"""FaultConfig / LinkWindow / PartitionWindow construction validation,
the ``unreliable`` / ``active`` gates that decide whether the builder
interposes the reliable-transport sublayer, and the ``--link-down``
CLI spec parser."""

import dataclasses

import pytest

from repro.system import (FaultConfig, LinkWindow, PartitionWindow,
                          parse_link_down)


# -- activity gates -----------------------------------------------------------
@pytest.mark.tier1
def test_default_config_is_inert():
    config = FaultConfig()
    assert not config.active
    assert not config.unreliable


@pytest.mark.tier1
def test_stress_profile_is_timing_only():
    config = FaultConfig.stress(7)
    assert config.active
    assert not config.unreliable            # plain Network stays in place


@pytest.mark.tier1
def test_unreliable_stress_profile_arms_the_transport():
    config = FaultConfig.unreliable_stress(7)
    assert config.active
    assert config.unreliable
    assert config.link_down                 # includes a scheduled outage


@pytest.mark.tier1
@pytest.mark.parametrize("kwargs", [
    dict(drop_prob=0.01),
    dict(dup_prob=0.01),
    dict(reorder_prob=0.1, reorder_window=16),
    dict(link_down=(LinkWindow(start=100, length=50),)),
    dict(partitions=(PartitionWindow(start=100, length=50),)),
], ids=("drop", "dup", "reorder", "link_down", "partition"))
def test_each_delivery_fault_class_flips_unreliable(kwargs):
    config = FaultConfig(seed=1, **kwargs)
    assert config.unreliable
    assert config.active                    # unreliable implies active


# -- construction validation --------------------------------------------------
@pytest.mark.tier1
@pytest.mark.parametrize("kwargs,match", [
    (dict(seed=-1), "seed"),
    (dict(delay_prob=-0.1), "delay_prob"),
    (dict(delay_prob=1.5), "delay_prob"),
    (dict(nack_prob=2.0), "nack_prob"),
    (dict(drop_prob=-0.5), "drop_prob"),
    (dict(dup_prob=1.01), "dup_prob"),
    (dict(reorder_prob=-0.2, reorder_window=8), "reorder_prob"),
    (dict(max_extra_delay=-1), "max_extra_delay"),
    (dict(reorder_window=-1), "reorder_window"),
    (dict(burst_period=100, burst_length=200), "burst_length"),
    (dict(reorder_prob=0.5), "reorder_window"),
    (dict(drop_prob=1.0), "drops every message"),
])
def test_invalid_construction_raises_value_error(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FaultConfig(**kwargs)


@pytest.mark.tier1
def test_burst_window_equal_to_period_is_allowed():
    # length == period means "always congested" — degenerate but legal
    config = FaultConfig(burst_period=100, burst_length=100,
                         burst_extra=5)
    assert config.active


@pytest.mark.tier1
def test_replace_revalidates():
    config = FaultConfig.stress(1)
    with pytest.raises(ValueError, match="drop_prob"):
        dataclasses.replace(config, drop_prob=-0.1)


@pytest.mark.tier1
@pytest.mark.parametrize("kwargs", [
    dict(start=-1, length=10),
    dict(start=0, length=0),
    dict(start=5, length=-2),
])
def test_link_window_validates_bounds(kwargs):
    with pytest.raises(ValueError):
        LinkWindow(**kwargs)


@pytest.mark.tier1
def test_partition_window_validates_socket():
    with pytest.raises(ValueError, match="socket"):
        PartitionWindow(start=0, length=10, socket=-1)
    with pytest.raises(ValueError):
        PartitionWindow(start=-5, length=10)


# -- --link-down spec parsing -------------------------------------------------
@pytest.mark.tier1
def test_parse_link_down_defaults_to_wildcards():
    window = parse_link_down("2000:1500")
    assert window == LinkWindow(start=2000, length=1500,
                                src="*", dst="*")


@pytest.mark.tier1
def test_parse_link_down_with_endpoints():
    assert parse_link_down("100:50:c0") == \
        LinkWindow(start=100, length=50, src="c0", dst="*")
    assert parse_link_down("100:50:c0:llc*") == \
        LinkWindow(start=100, length=50, src="c0", dst="llc*")


@pytest.mark.tier1
@pytest.mark.parametrize("spec", ["2000", "a:b", "1:2:3:4:5", ""])
def test_parse_link_down_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        parse_link_down(spec)


@pytest.mark.tier1
def test_parse_link_down_validates_window():
    with pytest.raises(ValueError):
        parse_link_down("-5:100")           # negative start
    with pytest.raises(ValueError):
        parse_link_down("100:0")            # zero length
