"""Regression pins for the network-layer latent bugs fixed alongside
sharding: the per-link latency cache going stale after ``set_pair`` /
``set_default`` (the first send on a pair froze its latency forever),
and ``Network.send`` validating ``msg.dst`` but happily transmitting
from an unregistered ``msg.src``.
"""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.network.noc import LatencyModel, Network
from repro.sim.engine import Engine, SimulationError
from repro.sim.stats import StatsRegistry


class Sink:
    def __init__(self, name, engine):
        self.name = name
        self.engine = engine
        self.received = []

    def receive(self, msg):
        self.received.append((self.engine.now, msg))


def _rig(default=10):
    engine = Engine()
    model = LatencyModel(default=default)
    network = Network(engine, StatsRegistry(), model)
    sink = Sink("b", engine)
    network.register(Sink("a", engine))
    network.register(sink)
    return engine, model, network, sink


def _flight_time(engine, network, sink):
    """Send one fixed-size message a->b and return its flight time."""
    departed = engine.now
    network.send(Message(MsgKind.REQ_V, 0x100, 1, "a", "b"))
    engine.run()
    arrived = sink.received[-1][0]
    return arrived - departed


# -- stale link-latency cache -------------------------------------------------
@pytest.mark.tier1
def test_set_pair_applies_to_already_used_link():
    # The a->b link caches its latency at first send; a later set_pair
    # used to be silently ignored for that pair.  Identical messages, so
    # any flight-time change is exactly the latency change.
    engine, model, network, sink = _rig(default=10)
    before = _flight_time(engine, network, sink)
    model.set_pair("a", "b", 3)
    after = _flight_time(engine, network, sink)
    assert before - after == 10 - 3


@pytest.mark.tier1
def test_set_default_applies_to_already_used_link():
    engine, model, network, sink = _rig(default=10)
    before = _flight_time(engine, network, sink)
    model.set_default(25)
    after = _flight_time(engine, network, sink)
    assert after - before == 25 - 10


@pytest.mark.tier1
def test_latency_model_version_bumps_on_every_mutation():
    model = LatencyModel(default=5)
    v0 = model.version
    model.set_pair("a", "b", 3)
    model.set_default(7)
    model.set_pair("a", "b", 3, symmetric=False)
    assert model.version == v0 + 3


# -- source validation --------------------------------------------------------
@pytest.mark.tier1
def test_send_rejects_unregistered_source():
    engine = Engine()
    network = Network(engine, StatsRegistry())
    network.register(Sink("b", engine))
    with pytest.raises(SimulationError, match="unknown source"):
        network.send(Message(MsgKind.REQ_V, 0x100, 1, "ghost", "b"))


@pytest.mark.tier1
def test_controlled_network_rejects_unregistered_source():
    from repro.verify.explorer import ControlledNetwork

    engine = Engine()
    network = ControlledNetwork(engine, StatsRegistry())
    network.register(Sink("b", engine))
    with pytest.raises(SimulationError, match="unknown source"):
        network.send(Message(MsgKind.REQ_V, 0x100, 1, "ghost", "b"))
