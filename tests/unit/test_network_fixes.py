"""Regression pins for the network-layer latent bugs fixed alongside
sharding: the per-link latency cache going stale after ``set_pair`` /
``set_default`` (the first send on a pair froze its latency forever),
and ``Network.send`` validating ``msg.dst`` but happily transmitting
from an unregistered ``msg.src``.  Plus fault-injector edges: burst
window boundary cycles, latency revalidation mid-run with an injector
attached (both timing-only and unreliable paths), and the per-link
fabric snapshot used by diagnostic dumps.
"""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.faults.injector import FaultInjector
from repro.network.noc import LatencyModel, Network
from repro.sim.engine import Engine, SimulationError
from repro.sim.stats import StatsRegistry
from repro.system import FaultConfig, LinkWindow


class Sink:
    def __init__(self, name, engine):
        self.name = name
        self.engine = engine
        self.received = []

    def receive(self, msg):
        self.received.append((self.engine.now, msg))


def _rig(default=10):
    engine = Engine()
    model = LatencyModel(default=default)
    network = Network(engine, StatsRegistry(), model)
    sink = Sink("b", engine)
    network.register(Sink("a", engine))
    network.register(sink)
    return engine, model, network, sink


def _flight_time(engine, network, sink):
    """Send one fixed-size message a->b and return its flight time."""
    departed = engine.now
    network.send(Message(MsgKind.REQ_V, 0x100, 1, "a", "b"))
    engine.run()
    arrived = sink.received[-1][0]
    return arrived - departed


# -- stale link-latency cache -------------------------------------------------
@pytest.mark.tier1
def test_set_pair_applies_to_already_used_link():
    # The a->b link caches its latency at first send; a later set_pair
    # used to be silently ignored for that pair.  Identical messages, so
    # any flight-time change is exactly the latency change.
    engine, model, network, sink = _rig(default=10)
    before = _flight_time(engine, network, sink)
    model.set_pair("a", "b", 3)
    after = _flight_time(engine, network, sink)
    assert before - after == 10 - 3


@pytest.mark.tier1
def test_set_default_applies_to_already_used_link():
    engine, model, network, sink = _rig(default=10)
    before = _flight_time(engine, network, sink)
    model.set_default(25)
    after = _flight_time(engine, network, sink)
    assert after - before == 25 - 10


@pytest.mark.tier1
def test_latency_model_version_bumps_on_every_mutation():
    model = LatencyModel(default=5)
    v0 = model.version
    model.set_pair("a", "b", 3)
    model.set_default(7)
    model.set_pair("a", "b", 3, symmetric=False)
    assert model.version == v0 + 3


# -- source validation --------------------------------------------------------
@pytest.mark.tier1
def test_send_rejects_unregistered_source():
    engine = Engine()
    network = Network(engine, StatsRegistry())
    network.register(Sink("b", engine))
    with pytest.raises(SimulationError, match="unknown source"):
        network.send(Message(MsgKind.REQ_V, 0x100, 1, "ghost", "b"))


@pytest.mark.tier1
def test_controlled_network_rejects_unregistered_source():
    from repro.verify.explorer import ControlledNetwork

    engine = Engine()
    network = ControlledNetwork(engine, StatsRegistry())
    network.register(Sink("b", engine))
    with pytest.raises(SimulationError, match="unknown source"):
        network.send(Message(MsgKind.REQ_V, 0x100, 1, "ghost", "b"))


# -- burst window boundary cycles ---------------------------------------------
@pytest.mark.tier1
def test_in_burst_boundary_cycles():
    injector = FaultInjector(FaultConfig(
        seed=0, burst_period=1000, burst_length=250, burst_extra=5))
    # the window is [k*period, k*period + length): closed start, open end
    assert injector.in_burst(0)
    assert injector.in_burst(249)
    assert not injector.in_burst(250)
    assert not injector.in_burst(999)
    assert injector.in_burst(1000)
    assert injector.in_burst(1249)
    assert not injector.in_burst(1250)


@pytest.mark.tier1
def test_in_burst_disabled_without_period_or_length():
    assert not FaultInjector(FaultConfig()).in_burst(0)
    assert not FaultInjector(FaultConfig(
        seed=0, burst_period=1000)).in_burst(0)      # zero-length window


# -- latency revalidation with an injector attached ---------------------------
@pytest.mark.tier1
def test_set_pair_applies_mid_run_with_injector_attached():
    # the injector branch of Network.send adds latency *after* the link
    # record lookup; a version bump must still re-derive the cached
    # latency on that path (inert config: no RNG perturbations)
    engine, model, network, sink = _rig(default=10)
    network.fault_injector = FaultInjector(FaultConfig(seed=0),
                                           network.stats)
    before = _flight_time(engine, network, sink)
    model.set_pair("a", "b", 3)
    after = _flight_time(engine, network, sink)
    assert before - after == 10 - 3


@pytest.mark.tier1
def test_set_pair_applies_mid_run_on_unreliable_path():
    # same property through _send_unreliable (delivery-fault classes
    # armed but scheduled far in the future, so no message is touched)
    engine, model, network, sink = _rig(default=10)
    network.fault_injector = FaultInjector(
        FaultConfig(seed=0,
                    link_down=(LinkWindow(start=10 ** 9, length=1),)),
        network.stats)
    assert network.fault_injector.unreliable
    before = _flight_time(engine, network, sink)
    model.set_pair("a", "b", 3)
    after = _flight_time(engine, network, sink)
    assert before - after == 10 - 3


# -- per-link fabric snapshot -------------------------------------------------
@pytest.mark.tier1
def test_links_snapshot_tracks_in_flight_depth_and_age():
    engine, model, network, sink = _rig(default=10)
    network.send(Message(MsgKind.REQ_V, 0x100, 1, "a", "b"))
    network.send(Message(MsgKind.REQ_V, 0x140, 1, "a", "b"))
    (row,) = [r for r in network.links_snapshot()
              if r["src"] == "a" and r["dst"] == "b"]
    assert row["in_flight"] == 2
    assert row["oldest_age"] == 0           # both sent at cycle 0
    assert row["latency"] == 10
    engine.run()
    (row,) = [r for r in network.links_snapshot()
              if r["src"] == "a" and r["dst"] == "b"]
    assert row["in_flight"] == 0
    assert row["oldest_age"] == 0
    assert row["last_delivery"] == sink.received[-1][0]
