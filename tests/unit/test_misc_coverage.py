"""Additional coverage: latency sampling, network edge cases, graph
parameters, store-buffer iteration, and representation helpers."""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.mem.store_buffer import StoreBuffer
from repro.network.noc import LatencyModel
from repro.system import build_system, scaled_config
from repro.workloads import community_graph, make_pr
from repro.workloads.trace import Op


def test_mean_load_latency_reported():
    workload = make_pr(num_cpus=2, num_gpus=2, warps_per_cu=1)
    system = build_system(scaled_config("SDD", 2, 2))
    system.load_workload(workload)
    result = system.run(max_events=30_000_000)
    assert result.mean_load_latency("cpu") > 0
    assert result.mean_load_latency("gpu") > 0
    # misses dominate a streaming workload: well above the 1-cycle hit
    assert result.mean_load_latency("gpu") >= 1.0


def test_mean_load_latency_zero_when_unused():
    system = build_system(scaled_config("SDD", 1, 1))
    result = system.run()
    assert result.mean_load_latency("cpu") == 0.0


def test_latency_model_pairs_and_default():
    model = LatencyModel(default=9)
    model.set_pair("a", "b", 3)
    assert model.latency("a", "b") == 3
    assert model.latency("b", "a") == 3        # symmetric by default
    assert model.latency("a", "c") == 9
    model.set_pair("a", "c", 5, symmetric=False)
    assert model.latency("a", "c") == 5
    assert model.latency("c", "a") == 9


def test_message_repr_and_traffic_class():
    msg = Message(MsgKind.REQ_O_DATA, 0x1000, 0b11, "a", "b",
                  data={0: 1})
    text = repr(msg)
    assert "ReqO+data" in text and "0x1000" in text
    assert msg.traffic_class == "ReqO+data"


def test_op_repr():
    assert "load" in repr(Op.load(0x104))
    assert "(+1)" in repr(Op.load([0x104, 0x108]))


def test_store_buffer_iteration_order():
    buffer = StoreBuffer(64)
    for i, line in enumerate((0x100, 0x200, 0x300)):
        buffer.push(line, 0b1, {0: i})
    assert [e.line for e in buffer.iter_entries()] == \
        [0x100, 0x200, 0x300]


def test_graph_edge_budget():
    graph = community_graph(num_vertices=100, num_communities=5,
                            out_degree=4, seed=9)
    # self-loops are dropped, so slightly under vertices * degree
    assert 300 <= graph.num_edges <= 400


def test_graph_inter_community_edges_exist():
    graph = community_graph(num_vertices=120, num_communities=6,
                            inter_fraction=0.3, seed=10)
    cross = sum(1 for v in range(graph.num_vertices)
                for t in graph.adj[v]
                if graph.community[v] != graph.community[t])
    assert cross > 0.1 * graph.num_edges


def test_graph_determinism():
    a = community_graph(num_vertices=60, num_communities=3, seed=5)
    b = community_graph(num_vertices=60, num_communities=3, seed=5)
    assert a.adj == b.adj
    c = community_graph(num_vertices=60, num_communities=3, seed=6)
    assert a.adj != c.adj


def test_workload_meta_defaults():
    from repro.workloads import WorkloadMeta
    meta = WorkloadMeta()
    assert meta.partitioning == "data"
    assert meta.sharing == "flat"


def test_run_result_read_word():
    system = build_system(scaled_config("SDD", 1, 1))
    system.dram.poke(0x4000, {2: 55})
    result = system.run()
    assert result.read_word(0x4008) == 55
