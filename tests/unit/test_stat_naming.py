"""Dotted stat-name scheme: per-shard canonical names, one-release
legacy aliases, and build-time collision detection."""

import pytest

from repro.sim.stats import (MetricNameError, StatsRegistry,
                             validate_metric_name)
from repro.system import (TraceConfig, WatchdogConfig, build_system,
                          scaled_config)
from repro.workloads import MICROBENCHMARKS


# ---------------------------------------------------------------------------
# grammar + scoping
# ---------------------------------------------------------------------------
def test_grammar_accepts_canonical_names():
    for name in ("llc.hits", "home.llc0.fills", "transport.retransmits",
                 "a", "a1.b_2.c"):
        assert validate_metric_name(name) == name


def test_grammar_rejects_violations():
    for bad in ("Llc.hits", "1a.b", "a..b", "a.", ".a", "a-b", "a b",
                ""):
        with pytest.raises(MetricNameError):
            validate_metric_name(bad)


def test_scoped_dual_writes_canonical_and_legacy():
    registry = StatsRegistry()
    scope = registry.scoped("home.llc0", legacy_prefix="llc")
    scope.incr("fills", 3)
    scope.incr_group("traffic", "req", 2)
    counters = registry.counters()
    assert counters["home.llc0.fills"] == 3
    assert counters["llc.fills"] == 3
    assert registry.group("home.llc0.traffic") == {"req": 2}
    assert registry.group("llc.traffic") == {"req": 2}


def test_legacy_name_sums_across_shards():
    registry = StatsRegistry()
    registry.scoped("home.llc0", legacy_prefix="llc").incr("fills", 3)
    registry.scoped("home.llc1", legacy_prefix="llc").incr("fills", 4)
    counters = registry.counters()
    assert counters["home.llc0.fills"] == 3
    assert counters["home.llc1.fills"] == 4
    assert counters["llc.fills"] == 7


def test_duplicate_scope_prefix_raises_at_build_time():
    registry = StatsRegistry()
    registry.scoped("home.llc0", legacy_prefix="llc")
    with pytest.raises(MetricNameError):
        registry.scoped("home.llc0", legacy_prefix="llc")


def test_scope_prefix_grammar_enforced():
    registry = StatsRegistry()
    with pytest.raises(MetricNameError):
        registry.scoped("Home.LLC0")
    with pytest.raises(MetricNameError):
        registry.scoped("home.llc0", legacy_prefix="LLC")


def test_aliased_view_shares_canonical_prefix():
    registry = StatsRegistry()
    scope = registry.scoped("home.gpu_l2", legacy_prefix="llc")
    upstream = scope.aliased("l2")
    scope.incr("fills", 1)
    upstream.incr("upstream_reads", 5)
    counters = registry.counters()
    assert counters["home.gpu_l2.fills"] == 1
    assert counters["llc.fills"] == 1
    assert counters["home.gpu_l2.upstream_reads"] == 5
    assert counters["l2.upstream_reads"] == 5
    assert "llc.upstream_reads" not in counters


# ---------------------------------------------------------------------------
# end-to-end on a sharded system
# ---------------------------------------------------------------------------
def test_sharded_run_emits_per_shard_names_that_sum_to_legacy():
    config = scaled_config(
        "SDD", 2, 2, llc_shards=2,
        watchdog=WatchdogConfig(stall_cycles=200_000),
        trace=TraceConfig())
    system = build_system(config)
    system.load_workload(MICROBENCHMARKS["ReuseS"](
        num_cpus=2, num_gpus=2, warps_per_cu=1))
    system.run(max_events=30_000_000)
    counters = system.stats.counters()
    shard_prefixes = [f"home.{home.name}." for home in system.llcs]
    assert len(shard_prefixes) == 2
    # collect the per-shard metric names actually emitted
    metrics = set()
    for name in counters:
        for prefix in shard_prefixes:
            if name.startswith(prefix):
                metrics.add(name[len(prefix):])
    assert metrics, "sharded run emitted no home.<shard>.* counters"
    for metric in metrics:
        sharded_sum = sum(counters.get(f"{prefix}{metric}", 0)
                          for prefix in shard_prefixes)
        assert sharded_sum == counters.get(f"llc.{metric}", 0), metric
    # every emitted name satisfies the registry grammar
    for name in counters:
        validate_metric_name(name)
