"""Unit tests for the DRF reference executor and race detector."""

import pytest

from repro.coherence.messages import atomic_add, atomic_max
from repro.consistency.reference import (DataRace, ReferenceExecutor,
                                         VectorClock, assert_drf)
from repro.workloads.trace import Op


def test_vector_clock_ordering():
    a, b = VectorClock(2), VectorClock(2)
    a.ticks = [1, 0]
    b.ticks = [1, 1]
    assert a.happens_before(b)
    assert not b.happens_before(a)


def test_vector_clock_join():
    a, b = VectorClock(2), VectorClock(2)
    a.ticks = [3, 0]
    b.ticks = [1, 2]
    a.join(b)
    assert a.ticks == [3, 2]


def test_sequential_thread_final_memory():
    trace = [Op.store(0x100, 1), Op.store(0x100, 2), Op.load(0x100)]
    result = ReferenceExecutor([trace]).run()
    assert result.value(0x100) == 2
    assert not result.races


def test_unsynchronized_write_write_race_detected():
    t0 = [Op.store(0x100, 1)]
    t1 = [Op.store(0x100, 2)]
    result = ReferenceExecutor([t0, t1]).run()
    assert result.races
    with pytest.raises(DataRace):
        assert_drf([t0, t1])


def test_unsynchronized_read_write_race_detected():
    t0 = [Op.store(0x100, 1)]
    t1 = [Op.load(0x100)]
    result = ReferenceExecutor([t0, t1]).run()
    assert result.races


def test_flag_synchronization_is_race_free():
    flag = 0x200
    t0 = [Op.store(0x100, 1), Op.rmw(flag, atomic_add(1), release=True)]
    t1 = [Op.spin_ge(flag, 1), Op.load(0x100)]
    result = assert_drf([t0, t1])
    assert result.value(0x100) == 1
    assert flag in result.sync_addrs


def test_release_fence_store_publication():
    flag = 0x200
    t0 = [Op.store(0x100, 7), Op.release_fence(), Op.store(flag, 1)]
    t1 = [Op.spin_ge(flag, 1), Op.load(0x100)]
    result = assert_drf([t0, t1])
    assert result.value(0x100) == 7


def test_atomics_are_never_races():
    counter = 0x300
    threads = [[Op.rmw(counter, atomic_add(1)) for _ in range(4)]
               for _ in range(3)]
    result = assert_drf(threads)
    assert result.value(counter) == 12


def test_atomic_max_applies():
    cell = 0x400
    threads = [[Op.rmw(cell, atomic_max(5))], [Op.rmw(cell, atomic_max(9))]]
    result = assert_drf(threads)
    assert result.value(cell) == 9


def test_barrier_orders_phases():
    barrier = 0x500
    threads = []
    for tid in range(3):
        threads.append([
            Op.store(0x600 + 4 * tid, tid + 1),
            Op.rmw(barrier, atomic_add(1), release=True),
            Op.spin_ge(barrier, 3),
            Op.load(0x600 + 4 * ((tid + 1) % 3)),
        ])
    result = assert_drf(threads)
    for tid in range(3):
        assert result.value(0x600 + 4 * tid) == tid + 1


def test_deadlock_detection():
    t0 = [Op.spin_ge(0x100, 1)]      # nobody ever writes the flag
    with pytest.raises(RuntimeError, match="deadlock"):
        ReferenceExecutor([t0]).run()


def test_transitive_happens_before():
    f1, f2 = 0x200, 0x204
    t0 = [Op.store(0x100, 5), Op.rmw(f1, atomic_add(1), release=True)]
    t1 = [Op.spin_ge(f1, 1), Op.rmw(f2, atomic_add(1), release=True)]
    t2 = [Op.spin_ge(f2, 1), Op.load(0x100)]
    result = assert_drf([t0, t1, t2])
    assert not result.races


def test_compute_and_acquire_ops_are_neutral():
    trace = [Op.compute(100), Op.acquire_fence(), Op.store(0x100, 1)]
    result = ReferenceExecutor([trace]).run()
    assert result.value(0x100) == 1


# -- edge cases: spin deadlock, release-window scope, clock asymmetry --------
def test_spin_on_never_released_sync_var_deadlocks():
    # The flag is written, but never past the spin threshold: the
    # executor must report the deadlock instead of spinning forever,
    # even though the writer thread itself completes.
    flag = 0x200
    t0 = [Op.store(0x100, 1), Op.release_fence(), Op.store(flag, 1)]
    t1 = [Op.spin_ge(flag, 2), Op.load(0x100)]
    with pytest.raises(RuntimeError, match="deadlock"):
        ReferenceExecutor([t0, t1]).run()


def test_release_fence_covers_only_next_store():
    # A release fence publishes through the NEXT plain store only; a
    # later store to a second flag is a plain write, so consuming that
    # second flag does not order the data access.
    data, flag_a, flag_b = 0x100, 0x200, 0x204
    t0 = [Op.store(data, 7), Op.release_fence(),
          Op.store(flag_a, 1), Op.store(flag_b, 1)]
    t1 = [Op.spin_ge(flag_b, 1), Op.load(data)]
    result = ReferenceExecutor([t0, t1]).run()
    assert any("0x100" in race for race in result.races)


def test_release_fence_publication_via_first_store():
    # ... whereas consuming the fenced store itself is properly ordered.
    data, flag_a = 0x100, 0x200
    t0 = [Op.store(data, 7), Op.release_fence(), Op.store(flag_a, 1)]
    t1 = [Op.spin_ge(flag_a, 1), Op.load(data)]
    result = ReferenceExecutor([t0, t1]).run()
    assert not result.races
    assert result.value(data) == 7


def test_happens_before_is_asymmetric_for_concurrent_clocks():
    a, b = VectorClock(2), VectorClock(2)
    a.ticks = [1, 0]
    b.ticks = [0, 1]
    # concurrent: neither orders the other — asymmetry must hold both
    # ways, not collapse to "not hb means hb the other way"
    assert not a.happens_before(b)
    assert not b.happens_before(a)
    # reflexivity: every clock happens-before itself (<= not <)
    assert a.happens_before(a)


def test_spin_join_sees_only_released_history():
    # A spin that succeeds on a value published WITHOUT a release does
    # not acquire the writer's history: the data access behind it races.
    data, flag = 0x100, 0x200
    t0 = [Op.store(data, 3), Op.store(flag, 1)]     # no release fence
    t1 = [Op.spin_ge(flag, 1), Op.load(data)]
    result = ReferenceExecutor([t0, t1]).run()
    assert any("0x100" in race for race in result.races)
