"""Unit tests for address-interleaved home sharding: the shared
:class:`~repro.core.shard.HomeMap`, the home-side misroute guard, and
the per-home-instance transaction-id counter (previously a class-level
counter that leaked across same-process simulations).
"""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.core.home import HomeTxn, SpandexHome
from repro.core.shard import HomeMap, shard_names, shard_size
from repro.network.noc import Network
from repro.sim.engine import Engine, SimulationError
from repro.sim.stats import StatsRegistry

KB = 1024


# -- shard naming -------------------------------------------------------------
@pytest.mark.tier1
def test_single_shard_keeps_historical_name():
    assert shard_names(1) == ("llc",)


@pytest.mark.tier1
def test_multi_shard_names_are_indexed():
    assert shard_names(3) == ("llc0", "llc1", "llc2")


@pytest.mark.tier1
def test_shard_count_must_be_positive():
    with pytest.raises(ValueError):
        shard_names(0)


@pytest.mark.tier1
def test_shard_size_rounds_to_whole_sets():
    # an inexact split (8 MB / 3) must still be a valid cache geometry
    assert shard_size(8 * 1024 * KB, 1, 16) == 8 * 1024 * KB
    three_way = shard_size(8 * 1024 * KB, 3, 16)
    assert three_way % (16 * 64) == 0
    assert 0 < three_way <= 8 * 1024 * KB // 3
    # never below one set, even for absurd splits
    assert shard_size(16 * 64, 4, 16) == 16 * 64


# -- HomeMap ------------------------------------------------------------------
@pytest.mark.tier1
def test_line_interleave_round_robins_consecutive_lines():
    home_map = HomeMap(shard_names(2), "line")
    assert home_map.home_for(0x1_0000) == "llc0"   # line index 0x400
    assert home_map.home_for(0x1_0040) == "llc1"   # line index 0x401
    assert home_map.home_for(0x1_0080) == "llc0"
    # sub-line offsets never change the home
    assert home_map.home_for(0x1_0004) == home_map.home_for(0x1_003C)


@pytest.mark.tier1
def test_hash_interleave_spreads_strided_lines():
    # a stride of N lines pins the 'line' interleave to one shard; the
    # hash interleave must still reach every shard
    home_map = HomeMap(shard_names(4), "hash")
    homes = {home_map.home_for(0x1_0000 + i * 4 * 64) for i in range(64)}
    assert homes == set(shard_names(4))


@pytest.mark.tier1
def test_hash_interleave_is_deterministic():
    a = HomeMap(shard_names(4), "hash")
    b = HomeMap(shard_names(4), "hash")
    lines = [i * 64 for i in range(256)]
    assert [a.home_for(line) for line in lines] == \
        [b.home_for(line) for line in lines]


@pytest.mark.tier1
def test_single_shard_map_is_constant():
    home_map = HomeMap(shard_names(1), "hash")
    assert home_map.home_for(0x1_0000) == "llc"
    assert home_map.home_for(0x9_FFC0) == "llc"
    assert len(home_map) == 1


@pytest.mark.tier1
def test_unknown_interleave_rejected():
    with pytest.raises(ValueError):
        HomeMap(shard_names(2), "striped")


# -- home-side wiring ---------------------------------------------------------
def _home(name, engine=None, network=None):
    engine = engine or Engine()
    network = network or Network(engine, StatsRegistry())
    home = SpandexHome(engine, name, network, StatsRegistry(),
                       size_bytes=64 * KB, banks=4)
    return home


@pytest.mark.tier1
def test_misrouted_request_raises():
    home = _home("llc0")
    home.home_map = HomeMap(shard_names(2), "line")
    good = Message(MsgKind.REQ_V, 0x1_0000, 1, "cpu0", "llc0")
    bad = Message(MsgKind.REQ_V, 0x1_0040, 1, "cpu0", "llc0")
    home.receive(good)                      # homed here: accepted
    with pytest.raises(SimulationError, match="misrouted"):
        home.receive(bad)                   # homed at llc1


@pytest.mark.tier1
def test_txn_ids_are_per_home_instance():
    # Two fresh homes must both start at txn 1: ids used to come from a
    # class-level counter, so traces depended on how many simulations
    # the process had already run.
    first = _home("llc")
    second = _home("llc")
    txn_a = first._new_txn(0x1_0000, 1, "O", lambda t: None)
    txn_b = second._new_txn(0x1_0000, 1, "O", lambda t: None)
    assert txn_a.txn_id == 1
    assert txn_b.txn_id == 1
    assert first._new_txn(0x1_0040, 1, "O", lambda t: None).txn_id == 2


@pytest.mark.tier1
def test_direct_hometxn_construction_still_works():
    # the class-level fallback remains for directly built transactions
    txn = HomeTxn(0x1_0000, 1, "O", lambda t: None)
    assert txn.txn_id >= 1
    assert HomeTxn(0x1_0000, 1, "O", lambda t: None, txn_id=99).txn_id == 99
