"""Unit tests for the parallel, cached experiment-sweep subsystem."""

import json

import pytest

from repro.analysis import ExperimentRunner
from repro.analysis.sweep import (CellSpec, ResultCache, SweepError,
                                  cell_key, code_fingerprint, grid_specs,
                                  run_sweep, simulate_cell)
from repro.sim.stats import LatencySampler, StatsRegistry
from repro.workloads import MICROBENCHMARKS
from repro.workloads.synthetic import make_local_sync

SMALL = dict(num_cpus=2, num_gpus=2, warps_per_cu=1)

#: a deliberately tiny grid so the whole file stays fast
TINY_SPECS = grid_specs(["ReuseS"], ["SDD", "HMG"], SMALL)


# -- specs and keys ------------------------------------------------------------
def test_grid_specs_cross_product_order():
    specs = grid_specs(["A", "B"], ["SDD", "HMG"])
    assert [(s.workload, s.config) for s in specs] == \
        [("A", "SDD"), ("A", "HMG"), ("B", "SDD"), ("B", "HMG")]


def test_cell_spec_kwargs_are_canonical():
    a = CellSpec.make("ReuseS", "SDD", dict(num_cpus=2, num_gpus=4))
    b = CellSpec.make("ReuseS", "SDD", dict(num_gpus=4, num_cpus=2))
    assert a == b
    assert cell_key(a) == cell_key(b)


def test_cell_key_distinguishes_cells():
    base = CellSpec.make("ReuseS", "SDD", SMALL)
    keys = {
        cell_key(base),
        cell_key(CellSpec.make("ReuseS", "HMG", SMALL)),
        cell_key(CellSpec.make("ReuseO", "SDD", SMALL)),
        cell_key(CellSpec.make("ReuseS", "SDD",
                               dict(SMALL, warps_per_cu=2))),
        cell_key(base, validate_memory=False),
        cell_key(base, max_events=123),
    }
    assert len(keys) == 6


def test_code_fingerprint_is_stable():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_registry_generator_resolution():
    spec = CellSpec.make("ReuseS", "SDD", SMALL)
    assert spec.generator_ref is None
    assert spec.resolve_generator() is MICROBENCHMARKS["ReuseS"]


def test_non_registry_generator_roundtrips_by_ref():
    spec = CellSpec.make("LocalSync", "SDD", SMALL,
                         generator=make_local_sync)
    assert spec.generator_ref == \
        "repro.workloads.synthetic:make_local_sync"
    assert spec.resolve_generator() is make_local_sync


def test_unknown_workload_without_ref_raises():
    with pytest.raises(SweepError):
        CellSpec.make("NotAWorkload", "SDD").resolve_generator()


# -- the cache -----------------------------------------------------------------
#: smallest payload the cache's schema validation accepts
VALID_PAYLOAD = {"workload": "W", "config": "SDD", "cycles": 7,
                 "network_bytes": 1.0, "traffic": {}, "stats": {}}


def test_cache_roundtrip_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("missing") is None
    cache.put("k1", VALID_PAYLOAD)
    assert cache.get("k1") == VALID_PAYLOAD
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get("k1") is None


def test_cache_tolerates_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    (tmp_path / "bad.json").write_text("{not json")
    with pytest.warns(RuntimeWarning, match="quarantined"):
        assert cache.get("bad") is None


def test_cache_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env"))
    cache = ResultCache()
    cache.put("k", {"cycles": 1})
    assert (tmp_path / "env" / "k.json").exists()


# -- running sweeps ------------------------------------------------------------
def test_serial_sweep_matches_direct_simulation(tmp_path):
    summary = run_sweep(TINY_SPECS, jobs=1, cache=ResultCache(tmp_path))
    direct = simulate_cell(TINY_SPECS[0])
    cell = summary.cells[0]
    assert cell.cycles == direct["cycles"]
    assert cell.network_bytes == direct["network_bytes"]
    assert cell.payload["traffic"] == direct["traffic"]
    assert cell.memory_ok is True
    assert cell.wall_time > 0


def test_warm_cache_rerun_simulates_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_sweep(TINY_SPECS, jobs=1, cache=cache)
    assert cold.cache_hits == 0
    assert cold.simulated == len(TINY_SPECS)
    warm = run_sweep(TINY_SPECS, jobs=1, cache=cache)
    assert warm.cache_hits == len(TINY_SPECS)
    assert warm.simulated == 0
    for a, b in zip(cold.cells, warm.cells):
        assert (a.cycles, a.network_bytes) == (b.cycles, b.network_bytes)


def test_parallel_sweep_is_byte_identical_to_serial():
    serial = run_sweep(TINY_SPECS, jobs=1, cache=None)
    parallel = run_sweep(TINY_SPECS, jobs=2, cache=None)
    for a, b in zip(serial.cells, parallel.cells):
        assert (a.workload, a.config) == (b.workload, b.config)
        assert a.cycles == b.cycles
        assert a.network_bytes == b.network_bytes
        assert a.payload["traffic"] == b.payload["traffic"]
        assert a.payload["stats"] == b.payload["stats"]


def test_summary_grouping_and_counters(tmp_path):
    summary = run_sweep(TINY_SPECS, jobs=1, cache=None)
    (wr,) = summary.workload_results()
    assert wr.workload == "ReuseS"
    assert list(wr.results) == ["SDD", "HMG"]
    assert wr.results["SDD"].memory_ok is True
    merged = summary.merged_stats()
    assert merged.get("network.bytes") == pytest.approx(
        sum(cell.network_bytes for cell in summary.cells))
    text = summary.format_summary()
    assert "cache hits: 0" in text and "simulated: 2" in text
    assert "wall time:" in text
    payload = json.loads(json.dumps(summary.to_json()))
    assert payload["cells"] == 2 and len(payload["results"]) == 2


def test_progress_callback_sees_every_cell(tmp_path):
    seen = []
    run_sweep(TINY_SPECS, jobs=1, cache=None,
              progress=lambda cell: seen.append(cell.config))
    assert sorted(seen) == ["HMG", "SDD"]


# -- the rewired ExperimentRunner ---------------------------------------------
def test_experiment_runner_on_sweep(tmp_path):
    runner = ExperimentRunner(**SMALL, configs=["SDD", "HMG"],
                              cache=ResultCache(tmp_path))
    result = runner.run("ReuseS", MICROBENCHMARKS["ReuseS"])
    assert list(result.results) == ["SDD", "HMG"]
    assert runner.last_sweep is not None
    assert runner.last_sweep.simulated == 2
    # a second runner over the same cache re-simulates nothing
    runner2 = ExperimentRunner(**SMALL, configs=["SDD", "HMG"],
                               cache=ResultCache(tmp_path))
    result2 = runner2.run("ReuseS", MICROBENCHMARKS["ReuseS"])
    assert runner2.last_sweep.cache_hits == 2
    assert result2.results["SDD"].cycles == result.results["SDD"].cycles


def test_experiment_runner_extra_kwargs_change_key():
    a = CellSpec.make("ReuseS", "SDD", dict(SMALL))
    b = CellSpec.make("ReuseS", "SDD", dict(SMALL, use_regions=True))
    assert cell_key(a) != cell_key(b)


# -- stats folding (worker -> parent) -----------------------------------------
def test_stats_registry_from_snapshot_merge():
    worker = StatsRegistry()
    worker.incr("cycles", 10)
    worker.incr_group("traffic.bytes", "ReqV", 64)
    rebuilt = StatsRegistry.from_snapshot(
        json.loads(json.dumps(worker.snapshot())))
    assert rebuilt.get("cycles") == 10
    assert rebuilt.group("traffic.bytes") == {"ReqV": 64}
    parent = StatsRegistry()
    parent.incr("cycles", 5)
    parent.merge(rebuilt)
    assert parent.get("cycles") == 15


def test_latency_sampler_merge_and_snapshot():
    a = LatencySampler()
    b = LatencySampler()
    for value in (5, 10):
        a.sample("load", value)
    for value in (1, 20):
        b.sample("load", value)
    b.sample("store", 3)
    a.merge(b)
    assert a.count("load") == 4
    assert a.mean("load") == pytest.approx(9)
    assert a.minimum("load") == 1
    assert a.maximum("load") == 20
    assert a.count("store") == 1
    rebuilt = LatencySampler.from_snapshot(
        json.loads(json.dumps(a.snapshot())))
    assert rebuilt.count("load") == 4
    assert rebuilt.maximum("load") == 20
