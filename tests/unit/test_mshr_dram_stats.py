"""Unit tests for MSHRs, DRAM, network, and statistics."""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.mem.dram import MainMemory
from repro.mem.mshr import MSHRFile
from repro.network.noc import LatencyModel, Network
from repro.sim.engine import Engine, SimulationError
from repro.sim.stats import LatencySampler, StatsRegistry


# -- MSHR -------------------------------------------------------------------
def test_mshr_allocate_and_coalesce():
    mshrs = MSHRFile(2)
    entry = mshrs.allocate(0x100, "primary")
    mshrs.attach(0x100, "secondary")
    assert entry.all_requests() == ["primary", "secondary"]
    assert 0x100 in mshrs


def test_mshr_capacity():
    mshrs = MSHRFile(1)
    mshrs.allocate(0x100, "a")
    assert mshrs.full
    with pytest.raises(RuntimeError):
        mshrs.allocate(0x200, "b")


def test_mshr_double_allocate_rejected():
    mshrs = MSHRFile(4)
    mshrs.allocate(0x100, "a")
    with pytest.raises(RuntimeError):
        mshrs.allocate(0x100, "b")


def test_mshr_release():
    mshrs = MSHRFile(4)
    mshrs.allocate(0x100, "a")
    entry = mshrs.release(0x100)
    assert entry.primary == "a"
    assert 0x100 not in mshrs
    with pytest.raises(RuntimeError):
        mshrs.release(0x100)


# -- DRAM -------------------------------------------------------------------
def test_dram_poke_peek():
    engine = Engine()
    dram = MainMemory(engine, StatsRegistry(), latency=10)
    dram.poke(0x100, {3: 42})
    assert dram.peek(0x100)[3] == 42
    assert dram.peek(0x100)[0] == 0


def test_dram_fetch_latency_and_data():
    engine = Engine()
    dram = MainMemory(engine, StatsRegistry(), latency=25)
    dram.poke(0x100, {0: 7})
    seen = {}

    def callback(data):
        seen["time"] = engine.now
        seen["data"] = data

    dram.fetch(0x100, callback)
    engine.run()
    assert seen["time"] >= 25
    assert seen["data"][0] == 7


def test_dram_writeback_masked():
    engine = Engine()
    dram = MainMemory(engine, StatsRegistry(), latency=10)
    dram.poke(0x100, {0: 1, 1: 2})
    dram.writeback(0x100, 0b10, {0: 99, 1: 88})
    assert dram.peek(0x100)[0] == 1       # not in mask
    assert dram.peek(0x100)[1] == 88


def test_dram_bank_serialization():
    engine = Engine()
    stats = StatsRegistry()
    dram = MainMemory(engine, stats, latency=20, banks=2,
                      bank_busy_cycles=10)
    times = []
    # both lines map to bank 0 (line>>6 even)
    dram.fetch(0x000, lambda d: times.append(engine.now))
    dram.fetch(0x080, lambda d: times.append(engine.now))
    engine.run()
    assert times[1] - times[0] >= 10


# -- network ----------------------------------------------------------------
class Sink:
    def __init__(self, name, engine):
        self.name = name
        self.engine = engine
        self.received = []

    def receive(self, msg):
        self.received.append((self.engine.now, msg))


def test_network_delivery_and_latency():
    engine = Engine()
    stats = StatsRegistry()
    model = LatencyModel(default=7)
    network = Network(engine, stats, model)
    sink = Sink("b", engine)
    network.register(sink)
    network.register(Sink("a", engine))
    network.send(Message(MsgKind.REQ_V, 0x100, 1, "a", "b"))
    engine.run()
    assert len(sink.received) == 1
    assert sink.received[0][0] >= 7


def test_network_fifo_per_pair():
    engine = Engine()
    network = Network(engine, StatsRegistry(), LatencyModel(default=5))
    sink = Sink("b", engine)
    network.register(sink)
    network.register(Sink("a", engine))
    for value in range(5):
        network.send(Message(MsgKind.REQ_WT, 0x100, 1, "a", "b",
                             data={0: value}))
    engine.run()
    values = [msg.data[0] for _, msg in sink.received]
    assert values == [0, 1, 2, 3, 4]


def test_network_traffic_accounting():
    engine = Engine()
    stats = StatsRegistry()
    network = Network(engine, stats, LatencyModel(default=5))
    sink = Sink("b", engine)
    network.register(sink)
    network.register(Sink("a", engine))
    msg = Message(MsgKind.RVK_O, 0x100, 1, "a", "b")
    network.send(msg)
    engine.run()
    assert stats.get("network.messages") == 1
    assert stats.group("traffic.bytes")["Probe"] == msg.size_bytes()


def test_network_unknown_destination():
    engine = Engine()
    network = Network(engine, StatsRegistry())
    with pytest.raises(SimulationError):
        network.send(Message(MsgKind.REQ_V, 0, 1, "a", "ghost"))


def test_network_duplicate_endpoint():
    engine = Engine()
    network = Network(engine, StatsRegistry())
    network.register(Sink("x", engine))
    with pytest.raises(SimulationError):
        network.register(Sink("x", engine))


def test_network_bandwidth_serialization():
    engine = Engine()
    network = Network(engine, StatsRegistry(), LatencyModel(default=0),
                      link_bytes_per_cycle=16)
    sink = Sink("b", engine)
    network.register(sink)
    network.register(Sink("a", engine))
    data = {i: 1 for i in range(16)}
    for _ in range(3):
        network.send(Message(MsgKind.RSP_V, 0, 0xFFFF, "a", "b",
                             data=data))
    engine.run()
    # 80-byte messages over a 16 B/cycle link: 5 cycles each
    arrival = [t for t, _ in sink.received]
    assert arrival[1] - arrival[0] >= 5


# -- stats ------------------------------------------------------------------
def test_stats_counters_and_groups():
    stats = StatsRegistry()
    stats.incr("x", 2)
    stats.incr("x")
    stats.incr_group("g", "a", 5)
    assert stats.get("x") == 3
    assert stats.group("g") == {"a": 5}
    assert stats.group_total("g") == 5


def test_stats_merge():
    a, b = StatsRegistry(), StatsRegistry()
    a.incr("x", 1)
    b.incr("x", 2)
    b.incr_group("g", "k", 4)
    a.merge(b)
    assert a.get("x") == 3
    assert a.group("g")["k"] == 4


def test_stats_snapshot_and_format():
    stats = StatsRegistry()
    stats.incr("x")
    stats.incr_group("g", "k")
    snap = stats.snapshot()
    assert snap["counters"]["x"] == 1
    assert "g" in stats.format_table()


def test_latency_sampler():
    sampler = LatencySampler()
    for value in (5, 10, 15):
        sampler.sample("load", value)
    assert sampler.mean("load") == 10
    assert sampler.count("load") == 3
    assert sampler.minimum("load") == 5
    assert sampler.maximum("load") == 15
    assert sampler.mean("missing") == 0
