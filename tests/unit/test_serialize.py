"""Tests for workload JSON serialization."""

import io

import pytest

from repro.coherence.messages import atomic_add, atomic_cas
from repro.system import build_system, scaled_config
from repro.workloads import APPLICATIONS, MICROBENCHMARKS
from repro.workloads.serialize import (SerializationError, decode_op,
                                       encode_op, load_workload,
                                       save_workload, workload_from_dict,
                                       workload_to_dict)
from repro.workloads.trace import Op, OpKind

SMALL = dict(num_cpus=2, num_gpus=2, warps_per_cu=1)


def test_op_roundtrip_load_store():
    for op in (Op.load([0x100, 0x140]), Op.store(0x200, 7),
               Op.compute(12), Op.acquire_fence(), Op.release_fence()):
        back = decode_op(encode_op(op))
        assert back.kind == op.kind
        assert back.addrs == op.addrs
        assert back.value == op.value
        assert back.cycles == op.cycles


def test_op_roundtrip_rmw():
    op = Op.rmw(0x100, atomic_add(3), release=True)
    back = decode_op(encode_op(op))
    assert back.kind == OpKind.RMW
    assert back.release and not back.acquire
    assert back.atomic.apply(10) == 13


def test_op_roundtrip_spin():
    op = Op.spin_ge(0x100, 5, regions=[(0x200, 64)], scope="cu")
    back = decode_op(encode_op(op))
    assert back.spin_until(5) and not back.spin_until(4)
    assert back.regions == [(0x200, 64)]
    assert back.scope == "cu"
    assert back.acquire


def test_custom_spin_rejected():
    op = Op.spin_load(0x100, lambda v: v % 3 == 1)
    with pytest.raises(SerializationError):
        encode_op(op)


def test_cas_rejected():
    op = Op.rmw(0x100, atomic_cas(1, 2))
    with pytest.raises(SerializationError):
        encode_op(op)


def test_unknown_format_rejected():
    with pytest.raises(SerializationError):
        workload_from_dict({"format": "something-else"})


@pytest.mark.parametrize("name", sorted(
    list(MICROBENCHMARKS) + list(APPLICATIONS)))
def test_every_builtin_workload_roundtrips(name):
    generators = {**MICROBENCHMARKS, **APPLICATIONS}
    workload = generators[name](**SMALL)
    payload = workload_to_dict(workload)
    back = workload_from_dict(payload)
    assert back.name == workload.name
    assert back.total_ops() == workload.total_ops()
    assert back.meta.sharing == workload.meta.sharing
    assert back.initial_memory == workload.initial_memory


def test_roundtripped_workload_simulates_identically():
    workload = MICROBENCHMARKS["ReuseO"](**SMALL, tile_lines=4,
                                         iterations=2)
    stream = io.StringIO()
    save_workload(workload, stream)
    stream.seek(0)
    back = load_workload(stream)
    outcomes = []
    for candidate in (workload, back):
        system = build_system(scaled_config("SDD", 2, 2))
        system.load_workload(candidate)
        result = system.run(max_events=10_000_000)
        outcomes.append((result.cycles, result.network_bytes))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("config", ("SDD", "HMG"))
def test_sync_heavy_roundtrip_reproduces_cycles(config, tmp_path):
    # TQH synchronizes through spin_load flags and rmw atomics (queue
    # pops + histogram updates), the exact ops whose encoding is
    # closure-sensitive; the reloaded trace must behave identically on
    # both a Spandex and a hierarchical configuration.
    workload = APPLICATIONS["TQH"](**SMALL)
    assert any(op.kind == OpKind.SPIN_LOAD
               for trace in workload.all_threads() for op in trace)
    assert any(op.kind == OpKind.RMW
               for trace in workload.all_threads() for op in trace)
    path = str(tmp_path / "tqh.json")
    save_workload(workload, path)
    back = load_workload(path)
    outcomes = []
    for candidate in (workload, back):
        system = build_system(scaled_config(config, 2, 2))
        system.load_workload(candidate)
        result = system.run(max_events=10_000_000)
        outcomes.append((result.cycles, result.network_bytes))
    assert outcomes[0] == outcomes[1]
    # and the reloaded workload still passes memory validation
    reference = back.reference()
    system = build_system(scaled_config(config, 2, 2))
    system.load_workload(back)
    system.run(max_events=10_000_000)
    assert all(system.read_coherent(addr) == value
               for addr, value in reference.memory.items())


def test_file_roundtrip(tmp_path):
    workload = MICROBENCHMARKS["ReuseS"](**SMALL)
    path = str(tmp_path / "wl.json")
    save_workload(workload, path)
    back = load_workload(path)
    assert back.total_ops() == workload.total_ops()
    # DRF certification still passes after the round trip
    back.reference()
