"""Unit tests for the request-policy layer (repro.core.policy):
the owner-prediction table (aliasing, eviction, confidence
saturation, invalidation) and per-access request-type selection.
"""

import pytest

from repro.coherence.messages import MsgKind
from repro.core.policy import (AdaptivePolicy, CriticalityPolicy,
                               OwnerPredictor, criticality_weight,
                               make_policy)

LINE = 0x1_0000


class FakeTU:
    """Just enough TU surface for RequestPolicy.select."""

    PROTOCOL_FAMILY = "DeNovo"

    def __init__(self, device_class="cpu"):
        self.device_class = device_class


# -- owner predictor -------------------------------------------------------

def test_predictor_requires_confidence_threshold():
    pred = OwnerPredictor(threshold=2)
    pred.train(LINE, "c0")
    assert pred.predict(LINE) is None          # confidence 1 < 2
    pred.train(LINE, "c0")
    assert pred.predict(LINE) == "c0"          # confidence 2


def test_predictor_confidence_saturates():
    pred = OwnerPredictor(threshold=2, max_confidence=3)
    for _ in range(10):
        pred.train(LINE, "c0")
    assert pred.lookup(LINE) == ("c0", 3)
    # saturation means exactly max_confidence mispredicts forget it
    pred.mispredict(LINE)
    pred.mispredict(LINE)
    assert pred.predict(LINE) is None          # 1 < threshold
    pred.mispredict(LINE)
    assert pred.lookup(LINE) is None           # entry dropped


def test_predictor_owner_change_restarts_confidence():
    pred = OwnerPredictor(threshold=2)
    pred.train(LINE, "c0")
    pred.train(LINE, "c0")
    pred.train(LINE, "g1")                     # new owner observed
    assert pred.predict(LINE) is None
    assert pred.lookup(LINE) == ("g1", 1)


def test_predictor_aliasing_lines_evict_each_other():
    pred = OwnerPredictor(sets=64, threshold=2, line_bytes=64)
    alias = LINE + 64 * 64                     # same set, different tag
    pred.train(LINE, "c0")
    pred.train(LINE, "c0")
    assert pred.predict(LINE) == "c0"
    pred.train(alias, "g0")                    # evicts LINE's entry
    assert pred.predict(LINE) is None
    assert pred.lookup(LINE) is None
    assert pred.lookup(alias) == ("g0", 1)


def test_predictor_distinct_sets_do_not_interfere():
    pred = OwnerPredictor(sets=64, threshold=2, line_bytes=64)
    other = LINE + 2 * 64                      # different set
    pred.train(LINE, "c0")
    pred.train(LINE, "c0")
    pred.train(other, "g0")
    assert pred.predict(LINE) == "c0"


def test_predictor_invalidate_on_ownership_transfer():
    pred = OwnerPredictor(threshold=2)
    pred.train(LINE, "c0")
    pred.train(LINE, "c0")
    pred.invalidate(LINE)                      # our own write-class req
    assert pred.predict(LINE) is None
    assert pred.lookup(LINE) is None
    # invalidating a different line in the same set is a no-op
    pred.train(LINE, "c0")
    pred.invalidate(LINE + 64 * 64)
    assert pred.lookup(LINE) == ("c0", 1)


def test_predictor_rejects_zero_sets():
    with pytest.raises(ValueError):
        OwnerPredictor(sets=0)


# -- criticality selection -------------------------------------------------

def test_criticality_weights_order():
    assert criticality_weight("cpu", MsgKind.REQ_V) > \
        criticality_weight("gpu", MsgKind.REQ_V)
    assert criticality_weight("cpu", MsgKind.REQ_O) > \
        criticality_weight("gpu", MsgKind.REQ_O)
    assert criticality_weight("gpu", MsgKind.REQ_V) > \
        criticality_weight("gpu", MsgKind.REQ_WT)


def test_criticality_converts_only_low_weight_stores():
    policy = CriticalityPolicy()
    gpu, cpu = FakeTU("gpu"), FakeTU("cpu")
    assert policy.select("GPU", MsgKind.REQ_WT, LINE, gpu) is \
        MsgKind.REQ_WT_FWD
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, gpu) is \
        MsgKind.REQ_WT_FWD
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, cpu) is None
    assert policy.select("DeNovo", MsgKind.REQ_V, LINE, gpu) is None
    assert policy.wants_prediction("DeNovo", MsgKind.REQ_V)
    assert not policy.wants_prediction("DeNovo", MsgKind.REQ_O)


# -- adaptive selection ----------------------------------------------------

def test_adaptive_converts_after_observed_remote_read():
    policy = AdaptivePolicy(region_lines=4, remote_threshold=1)
    tu = FakeTU("cpu")
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, tu) is None
    policy.observe_forward(LINE, "g0")
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, tu) is \
        MsgKind.REQ_WT_FWD
    # whole region flips: a neighbouring line in the same 4-line
    # region converts too, but a different region stays fixed
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE + 64, tu) is \
        MsgKind.REQ_WT_FWD
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE + 4 * 64, tu) \
        is None


def test_adaptive_threshold_counts_observations():
    policy = AdaptivePolicy(region_lines=4, remote_threshold=3)
    tu = FakeTU("cpu")
    policy.observe_forward(LINE, "g0")
    policy.observe_forward(LINE + 64, "g1")
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, tu) is None
    policy.observe_forward(LINE, "g0")
    assert policy.select("DeNovo", MsgKind.REQ_O, LINE, tu) is \
        MsgKind.REQ_WT_FWD


def test_adaptive_never_touches_loads():
    policy = AdaptivePolicy()
    tu = FakeTU("cpu")
    policy.observe_forward(LINE, "g0")
    assert policy.select("DeNovo", MsgKind.REQ_V, LINE, tu) is None
    assert policy.wants_prediction("DeNovo", MsgKind.REQ_V)


# -- factory ---------------------------------------------------------------

def test_make_policy_names():
    assert make_policy("fixed") is None
    assert isinstance(make_policy("criticality"), CriticalityPolicy)
    assert isinstance(make_policy("adaptive"), AdaptivePolicy)
    with pytest.raises(ValueError):
        make_policy("bogus")
