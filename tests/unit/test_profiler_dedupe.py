"""Regression: transport retransmissions must not inflate the
profiler's flight-cycle attribution.

Each retransmission is a genuine ``net.send`` carrying the *same*
``rseq`` on its (src, dst) channel.  Before the per-channel watermark
dedupe, every retransmission re-accrued its flight time into
``by_class`` and the per-transaction stage totals, so lossy runs
reported inflated network cycles."""

from repro.obs import TraceEvent, TransactionProfiler


def _events(*specs):
    return [TraceEvent(*args, **kwargs) for args, kwargs in specs]


def _drive(profiler, events):
    for event in events:
        profiler(event)


def test_duplicate_rseq_send_is_suppressed():
    profiler = TransactionProfiler()
    _drive(profiler, _events(
        ((0, "l1.issue", "cpu0.l1"), dict(line=0x40, req_id=1,
                                          info="GetO")),
        ((4, "net.send", "cpu0.l1"), dict(dst="llc", req_id=1,
                                          cls="req", dur=10, rseq=0)),
        # the transport retransmits the same sequence number
        ((40, "net.send", "cpu0.l1"), dict(dst="llc", req_id=1,
                                           cls="req", dur=10, rseq=0)),
        ((80, "net.send", "cpu0.l1"), dict(dst="llc", req_id=1,
                                           cls="req", dur=10, rseq=0)),
        ((100, "l1.complete", "cpu0.l1"), dict(req_id=1)),
    ))
    assert profiler.by_class["req"]["direct"] == 10       # not 30
    assert profiler.retx_suppressed == 2
    assert profiler.retx_flight_cycles == 20
    snapshot = profiler.snapshot()
    assert snapshot["retx_suppressed"] == 2
    assert snapshot["retx_flight_cycles"] == 20.0
    # the transaction's network stage counts the first flight only
    assert profiler.stage_totals["network"] == 10
    assert "retransmitted sends excluded: 2 (20 flight cycles)" \
        in profiler.format_report()


def test_increasing_rseq_advances_the_watermark():
    profiler = TransactionProfiler()
    _drive(profiler, _events(
        ((0, "net.send", "a"), dict(dst="b", cls="req", dur=5, rseq=0)),
        ((9, "net.send", "a"), dict(dst="b", cls="req", dur=5, rseq=1)),
        ((18, "net.send", "a"), dict(dst="b", cls="req", dur=5,
                                     rseq=2)),
    ))
    assert profiler.by_class["req"]["direct"] == 15
    assert profiler.retx_suppressed == 0


def test_watermark_is_per_channel():
    profiler = TransactionProfiler()
    # rseq 0 on two different channels: both are first sends
    _drive(profiler, _events(
        ((0, "net.send", "a"), dict(dst="b", cls="req", dur=5, rseq=0)),
        ((0, "net.send", "b"), dict(dst="a", cls="rsp", dur=7, rseq=0)),
        # reverse-direction retransmission is still caught
        ((30, "net.send", "b"), dict(dst="a", cls="rsp", dur=7,
                                     rseq=0)),
    ))
    assert profiler.by_class["req"]["direct"] == 5
    assert profiler.by_class["rsp"]["direct"] == 7
    assert profiler.retx_suppressed == 1
    assert profiler.retx_flight_cycles == 7


def test_unsequenced_sends_are_never_suppressed():
    profiler = TransactionProfiler()
    # reliable-network runs carry no rseq; identical sends all count
    _drive(profiler, _events(
        ((0, "net.send", "a"), dict(dst="b", cls="req", dur=5)),
        ((9, "net.send", "a"), dict(dst="b", cls="req", dur=5)),
    ))
    assert profiler.by_class["req"]["direct"] == 10
    assert profiler.retx_suppressed == 0


def test_wire_duplicates_never_reach_the_send_path():
    profiler = TransactionProfiler()
    _drive(profiler, _events(
        ((0, "net.send", "a"), dict(dst="b", cls="req", dur=5, rseq=0)),
        # a fault-injected wire duplicate is traced as net.dup, which
        # must not touch flight attribution or the watermark
        ((12, "net.dup", "a"), dict(dst="b", cls="req", dur=5, rseq=0)),
    ))
    assert profiler.by_class["req"]["direct"] == 5
    assert profiler.retx_suppressed == 0
    assert profiler.retx_flight_cycles == 0
