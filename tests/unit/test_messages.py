"""Unit tests for the coherence message vocabulary."""

from repro.coherence.addr import FULL_LINE_MASK
from repro.coherence.messages import (CONTROL_BYTES, ADDR_BYTES, MASK_BYTES,
                                      DEVICE_REQUESTS, Message, MsgKind,
                                      RESPONSE_OF, TRAFFIC_CLASS, atomic_add,
                                      atomic_cas, atomic_exch, atomic_max)


def test_seven_device_request_types():
    # Paper §III-A: exactly seven request types from a Spandex device.
    assert len(DEVICE_REQUESTS) == 7
    assert MsgKind.REQ_V in DEVICE_REQUESTS
    assert MsgKind.REQ_WB in DEVICE_REQUESTS


def test_every_request_has_a_response():
    for kind in DEVICE_REQUESTS:
        assert kind in RESPONSE_OF
    assert RESPONSE_OF[MsgKind.RVK_O] == MsgKind.RSP_RVK_O
    assert RESPONSE_OF[MsgKind.INV] == MsgKind.ACK


def test_probe_traffic_class_covers_inv_and_rvko():
    # Paper §V: "The Probe network message category represents Inv and
    # RvkO messages."
    for kind in (MsgKind.INV, MsgKind.ACK, MsgKind.RVK_O,
                 MsgKind.RSP_RVK_O):
        assert TRAFFIC_CLASS[kind] == "Probe"


def test_every_kind_has_a_traffic_class():
    for kind in MsgKind:
        assert kind in TRAFFIC_CLASS, kind


def test_message_size_control_only():
    msg = Message(MsgKind.REQ_O, 0x100, FULL_LINE_MASK, "a", "b")
    assert msg.size_bytes() == CONTROL_BYTES + ADDR_BYTES


def test_message_size_partial_mask_adds_bitmask():
    msg = Message(MsgKind.REQ_WT, 0x100, 0b101, "a", "b",
                  data={0: 1, 2: 2})
    assert msg.size_bytes() == CONTROL_BYTES + ADDR_BYTES + MASK_BYTES + 8


def test_message_size_full_line_data():
    data = {i: i for i in range(16)}
    msg = Message(MsgKind.RSP_V, 0x100, FULL_LINE_MASK, "a", "b", data=data)
    assert msg.size_bytes() == CONTROL_BYTES + ADDR_BYTES + 64


def test_word_granularity_cheaper_than_line():
    word = Message(MsgKind.REQ_WB, 0, 1, "a", "b", data={0: 7})
    line = Message(MsgKind.REQ_WB, 0, FULL_LINE_MASK, "a", "b",
                   data={i: 7 for i in range(16)})
    assert word.size_bytes() < line.size_bytes()


def test_req_ids_unique():
    a = Message(MsgKind.REQ_V, 0, 1, "a", "b")
    b = Message(MsgKind.REQ_V, 0, 1, "a", "b")
    assert a.req_id != b.req_id


def test_word_count_and_words():
    msg = Message(MsgKind.REQ_O, 0, 0b1001, "a", "b")
    assert msg.word_count() == 2
    assert list(msg.words()) == [0, 3]


def test_atomic_add():
    op = atomic_add(5)
    assert op.apply(10) == 15


def test_atomic_max():
    op = atomic_max(7)
    assert op.apply(3) == 7
    assert op.apply(11) == 11


def test_atomic_exch():
    op = atomic_exch(42)
    assert op.apply(1) == 42


def test_atomic_cas():
    op = atomic_cas(expected=3, new=9)
    assert op.apply(3) == 9
    assert op.apply(4) == 4
