"""Unit tests for the device models (CPU core, GPU CU)."""

from repro.coherence.messages import atomic_add
from repro.devices.cpu import CPUCore
from repro.devices.gpu import GPUCU, Warp, coalesce
from repro.workloads.trace import Op

from tests.harness import MiniSpandex

LINE = 0x3000


def cpu_rig(trace, protocol="DeNovo"):
    mini = MiniSpandex({"dev": protocol}, coalesce_delay=1)
    core = CPUCore(mini.engine, "core", mini.l1s["dev"], mini.stats,
                   trace=trace)
    return mini, core


def gpu_rig(warp_traces, protocol="GPU"):
    mini = MiniSpandex({"dev": protocol}, coalesce_delay=1)
    cu = GPUCU(mini.engine, "cu", mini.l1s["dev"], mini.stats,
               warp_traces=warp_traces)
    return mini, cu


# -- coalescer -----------------------------------------------------------------
def test_coalesce_groups_by_line():
    groups = coalesce([0x100, 0x104, 0x140, 0x17C])
    assert set(groups) == {0x100, 0x140}
    assert set(groups[0x100]) == {0, 1}
    assert set(groups[0x140]) == {0, 15}


def test_coalesce_duplicate_words_merge():
    groups = coalesce([0x100, 0x100, 0x100])
    assert len(groups[0x100]) == 1


# -- CPU core -------------------------------------------------------------------
def test_cpu_executes_trace_in_order():
    trace = [Op.store(LINE, 1), Op.load(LINE), Op.compute(10),
             Op.store(LINE + 4, 2)]
    mini, core = cpu_rig(trace)
    core.start()
    mini.run()
    assert core.done
    assert core.ops_executed == 4


def test_cpu_loads_block_progress():
    """A load miss stalls the next op until the response arrives."""
    trace = [Op.load(LINE), Op.compute(0)]
    mini, core = cpu_rig(trace)
    core.start()
    mini.run(until=5)
    assert core._pc == 0          # still blocked on the miss
    mini.run()
    assert core.done


def test_cpu_stores_do_not_block():
    trace = [Op.store(LINE + 64 * i, i) for i in range(8)]
    mini, core = cpu_rig(trace)
    core.start()
    mini.run(until=20)
    assert core._pc >= 7          # retired into the store buffer


def test_cpu_spin_load_completes_when_value_arrives():
    flag = 0x5000
    trace = [Op.spin_ge(flag, 1), Op.compute(1)]
    mini, core = cpu_rig(trace)
    core.start()
    mini.run(until=300)
    assert not core.done          # still spinning on 0
    # another device publishes the flag
    mini.rmw("dev2", flag, 0b1, atomic_add(1)) if False else None
    mini.seed(flag, {0: 0})       # noop; publish via llc poke below
    resident = mini.llc.array.lookup(flag, touch=False)
    if resident is None:
        mini.dram.poke(flag, {0: 1})
    else:
        resident.data[0] = 1
    mini.run(until=mini.engine.now + 500)
    assert core.done
    assert core.spin_iterations > 0


def test_cpu_rmw_returns_old_value_path():
    counter = 0x5100
    trace = [Op.rmw(counter, atomic_add(5)),
             Op.rmw(counter, atomic_add(5))]
    mini, core = cpu_rig(trace)
    core.start()
    mini.run()
    assert core.done
    assert mini.l1s["dev"].array.lookup(
        counter, touch=False).data[0] == 10


def test_cpu_on_done_callback():
    mini, core = cpu_rig([Op.compute(5)])
    fired = []
    core.on_done = lambda: fired.append(mini.engine.now)
    core.start()
    mini.run()
    assert fired


# -- GPU CU ---------------------------------------------------------------------
def test_gpu_warps_interleave():
    """With one warp blocked on a miss, the other keeps issuing."""
    long_miss = [Op.load(LINE), Op.compute(1)]
    computes = [Op.compute(1) for _ in range(5)]
    mini, cu = gpu_rig([long_miss, computes])
    cu.start()
    mini.run(until=30)
    assert cu.warps[1].pc >= 3        # warp 1 progressed past warp 0
    mini.run()
    assert cu.done


def test_gpu_vector_load_coalesces_to_line_requests():
    addrs = [LINE + 4 * i for i in range(8)]
    mini, cu = gpu_rig([[Op.load(addrs)]])
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    cu.start()
    mini.run()
    reqv = [m for m in traffic if m.kind.value == "ReqV"
            and m.src == "dev"]
    assert len(reqv) == 1             # one line request for 8 lanes


def test_gpu_vector_store_accepted_counts():
    addrs = [LINE + 4 * i for i in range(4)] + \
            [LINE + 64 + 4 * i for i in range(4)]
    mini, cu = gpu_rig([[Op.store(addrs, 7), Op.compute(1)]])
    cu.start()
    mini.run()
    assert cu.done
    assert mini.llc_word(LINE, 0) == 7
    assert mini.llc_word(LINE + 64, 3) == 7


def test_gpu_many_outstanding_misses():
    """Latency tolerance: a CU with N warps overlaps N misses."""
    warps = [[Op.load(LINE + 0x1000 * w)] for w in range(6)]
    mini, cu = gpu_rig(warps)
    cu.start()
    finish = mini.run()
    # all six misses overlapped: total time is ~one miss, not six
    single = MiniSpandex({"dev": "GPU"}, coalesce_delay=1)
    single_cu = GPUCU(single.engine, "cu", single.l1s["dev"],
                      single.stats, warp_traces=[[Op.load(LINE)]])
    single_cu.start()
    single_time = single.run()
    assert finish < 3 * single_time


def test_gpu_rmw_and_fences():
    counter = 0x5200
    trace = [Op.rmw(counter, atomic_add(1)),
             Op.acquire_fence(), Op.release_fence(), Op.compute(1)]
    mini, cu = gpu_rig([trace])
    cu.start()
    mini.run()
    assert cu.done
    assert mini.llc_word(counter, 0) == 1


def test_warp_done_property():
    warp = Warp([Op.compute(1)])
    assert not warp.done
    warp.pc = 1
    assert warp.done
