"""Unit tests for the composable fabric topology builders
(``repro.network.topology``): pair-latency derivation for each kind,
determinism, and the install path through ``LatencyModel``.
"""

from dataclasses import replace

import pytest

from repro.network.noc import LatencyModel
from repro.network.topology import (Attachment, TopoEndpoint, Topology,
                                    build_topology)
from repro.system.config import CONFIGS

BASE = CONFIGS["SMG"]

ENDPOINTS = [
    TopoEndpoint("cpu0", "cpu"),
    TopoEndpoint("cpu1", "cpu"),
    TopoEndpoint("gpu0", "gpu"),
    TopoEndpoint("gpu1", "gpu"),
    TopoEndpoint("llc0", "home"),
    TopoEndpoint("llc1", "home"),
]

ATTACHMENTS = [
    Attachment("cpu0", "llc0", BASE.net_cpu_llc),
    Attachment("cpu0", "llc1", BASE.net_cpu_llc),
    Attachment("cpu1", "llc0", BASE.net_cpu_llc),
    Attachment("cpu1", "llc1", BASE.net_cpu_llc),
    Attachment("gpu0", "llc0", BASE.net_gpu_llc),
    Attachment("gpu0", "llc1", BASE.net_gpu_llc),
    Attachment("gpu1", "llc0", BASE.net_gpu_llc),
    Attachment("gpu1", "llc1", BASE.net_gpu_llc),
]


def _build(**overrides):
    config = replace(BASE, **overrides)
    return build_topology(config, ENDPOINTS, ATTACHMENTS)


# -- p2p: the historical star -------------------------------------------------
@pytest.mark.tier1
def test_p2p_is_exactly_the_attachment_star():
    topo = _build(topology="p2p")
    assert topo.latency("cpu0", "llc0") == BASE.net_cpu_llc
    assert topo.latency("llc0", "cpu0") == BASE.net_cpu_llc
    assert topo.latency("gpu1", "llc1") == BASE.net_gpu_llc
    # non-attached pairs are absent: they fall back to the default
    assert ("cpu0", "cpu1") not in topo.pairs
    assert len(topo.pairs) == 2 * len(ATTACHMENTS)


# -- mesh ---------------------------------------------------------------------
@pytest.mark.tier1
def test_mesh_latency_is_manhattan_hops():
    topo = _build(topology="mesh", mesh_hop_latency=4)
    # homes are placed first on the row-major grid (width 3 for six
    # endpoints): llc0 (0,0), llc1 (1,0), cpu0 (2,0), cpu1 (0,1), ...
    assert topo.latency("llc0", "llc1") == 4          # one hop
    assert topo.latency("llc0", "cpu0") == 8          # two hops
    assert topo.latency("llc0", "cpu1") == 4          # one hop down
    # symmetric by construction, every ordered pair present
    assert topo.latency("cpu0", "llc0") == topo.latency("llc0", "cpu0")
    assert len(topo.pairs) == len(ENDPOINTS) * (len(ENDPOINTS) - 1)


# -- switch -------------------------------------------------------------------
@pytest.mark.tier1
def test_switch_routes_through_central_hop():
    topo = _build(topology="switch", switch_latency=6)
    cpu_leg = max(1, BASE.net_cpu_llc // 2)
    gpu_leg = max(1, BASE.net_gpu_llc // 2)
    home_leg = max(1, BASE.net_default // 2)
    assert topo.latency("cpu0", "llc0") == cpu_leg + 6 + home_leg
    assert topo.latency("gpu0", "llc1") == gpu_leg + 6 + home_leg
    assert topo.latency("cpu0", "gpu0") == cpu_leg + 6 + gpu_leg


# -- multi_socket -------------------------------------------------------------
@pytest.mark.tier1
def test_multi_socket_penalties_are_asymmetric():
    topo = _build(topology="multi_socket", num_sockets=2,
                  cross_socket_latency=40, cross_socket_return_latency=60)
    # homes round-robin (llc0 -> socket 0, llc1 -> socket 1); devices
    # block-partition (cpu0/gpu0 -> socket 0, cpu1/gpu1 -> socket 1)
    assert topo.sockets["llc0"] == 0 and topo.sockets["llc1"] == 1
    assert topo.sockets["cpu0"] == 0 and topo.sockets["cpu1"] == 1
    # intra-socket keeps the attachment latency
    assert topo.latency("cpu0", "llc0") == BASE.net_cpu_llc
    # crossing up adds the request penalty, crossing back the return one
    assert topo.latency("cpu0", "llc1") == BASE.net_cpu_llc + 40
    assert topo.latency("llc1", "cpu0") == BASE.net_cpu_llc + 60


@pytest.mark.tier1
def test_multi_socket_single_socket_degenerates_to_star():
    topo = _build(topology="multi_socket", num_sockets=1)
    assert topo.latency("cpu0", "llc1") == BASE.net_cpu_llc
    assert topo.latency("llc1", "cpu0") == BASE.net_cpu_llc


# -- shared behaviour ---------------------------------------------------------
@pytest.mark.tier1
def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        _build(topology="torus")


@pytest.mark.tier1
def test_builders_are_deterministic():
    for kind in ("p2p", "mesh", "switch", "multi_socket"):
        assert _build(topology=kind).pairs == _build(topology=kind).pairs


@pytest.mark.tier1
def test_install_writes_pairs_and_bumps_version():
    topo = Topology("p2p", {("a", "b"): 3, ("b", "a"): 5})
    model = LatencyModel(default=12)
    before = model.version
    topo.install(model)
    assert model.latency("a", "b") == 3
    assert model.latency("b", "a") == 5     # asymmetric pairs survive
    assert model.latency("a", "z") == 12
    assert model.version > before


@pytest.mark.tier1
def test_describe_mentions_kind_and_sockets():
    topo = _build(topology="multi_socket", num_sockets=2)
    assert "multi_socket" in topo.describe()
    assert "2 sockets" in topo.describe()
