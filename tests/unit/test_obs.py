"""Unit tests for the observability layer (``repro.obs``): recorder
ring semantics, filter parsing, hop classification, profiler stitching,
Chrome-trace export/validation, metrics epochs, and timelines."""

import json

import pytest

from repro.coherence.addr import FULL_LINE_MASK
from repro.coherence.messages import Message, MsgKind
from repro.obs import (TraceFilter, TraceRecorder, TransactionProfiler,
                       MetricsTimeSeries, chrome_trace_events,
                       format_timeline, hop_class, load_chrome_trace,
                       validate_chrome_trace, write_chrome_trace)
from repro.sim.stats import StatsRegistry


class FakeEngine:
    def __init__(self):
        self.now = 0
        self.tracer = None


def make_recorder(capacity=16, filter=None):
    return TraceRecorder(FakeEngine(), capacity=capacity, filter=filter)


# ---------------------------------------------------------------------------
# recorder ring
# ---------------------------------------------------------------------------
def test_ring_is_bounded_and_counts_everything():
    recorder = make_recorder(capacity=8)
    for i in range(20):
        recorder.engine.now = i
        recorder.record("l1.state", "cpu0.l1", line=i * 64)
    assert recorder.seen == 20
    assert recorder.kept == 20          # filterless: every event kept...
    assert len(recorder) == 8           # ...but the ring holds only 8
    assert [e.ts for e in recorder.events()] == list(range(12, 20))


def test_sinks_see_filtered_out_events():
    filt = TraceFilter.parse(["dev=gpu0.l1"])
    recorder = make_recorder(filter=filt)
    seen_by_sink = []
    recorder.sinks.append(seen_by_sink.append)
    recorder.record("l1.state", "cpu0.l1")
    recorder.record("l1.state", "gpu0.l1")
    assert len(seen_by_sink) == 2       # sinks: everything
    assert len(recorder) == 1           # ring: only the match
    assert recorder.events()[0].src == "gpu0.l1"


def test_tail_picks_events_for_implicated_lines():
    recorder = make_recorder(capacity=64)
    for i in range(10):
        recorder.engine.now = i
        recorder.record("home.busy", "llc", line=(i % 2) * 64)
    tail = recorder.tail(3, lines={64})
    assert [e.ts for e in tail] == [5, 7, 9]
    assert all(e.line == 64 for e in tail)
    assert [e.ts for e in recorder.tail(2)] == [8, 9]


# ---------------------------------------------------------------------------
# filters
# ---------------------------------------------------------------------------
def test_filter_parse_and_match():
    filt = TraceFilter.parse(["addr=0x1044/dev=cpu0.l1", "class=ReqV"])
    assert filt.lines == frozenset({0x1040})       # line-aligned
    recorder = make_recorder(filter=filt)
    kept = recorder.record("net.send", "cpu0.l1", line=0x1040, cls="ReqV")
    assert filt.matches(kept)
    # wrong line
    assert not filt.matches(
        recorder.record("net.send", "cpu0.l1", line=0x2000, cls="ReqV"))
    # event without a line is dropped when addr= is constrained
    assert not filt.matches(recorder.record("net.send", "cpu0.l1",
                                            cls="ReqV"))
    # dst counts as a device match
    assert filt.matches(recorder.record("net.send", "llc",
                                        dst="cpu0.l1", line=0x1040,
                                        cls="ReqV"))


def test_filter_parse_rejects_bad_specs():
    with pytest.raises(ValueError):
        TraceFilter.parse(["addr"])
    with pytest.raises(ValueError):
        TraceFilter.parse(["color=red"])
    assert TraceFilter.parse([]) is None
    assert TraceFilter.parse(["", " / "]) is None


# ---------------------------------------------------------------------------
# hop classification
# ---------------------------------------------------------------------------
def _msg(kind, src, dst, requestor=None):
    return Message(kind, 0x1000, FULL_LINE_MASK, src=src, dst=dst,
                   requestor=requestor)


def test_hop_classification():
    homes = {"llc", "gpu_l2", "l3"}
    # device request and plain home response: direct
    assert hop_class(_msg(MsgKind.REQ_V, "cpu0.l1", "llc"),
                     homes) == "direct"
    assert hop_class(_msg(MsgKind.RSP_V, "llc", "cpu0.l1"),
                     homes) == "direct"
    # home <-> home: the hierarchical level crossing
    assert hop_class(_msg(MsgKind.GET_S, "gpu_l2", "l3"),
                     homes) == "level"
    assert hop_class(_msg(MsgKind.DATA_E, "l3", "gpu_l2"),
                     homes) == "level"
    # home forwarding on behalf of a requestor: indirection
    assert hop_class(_msg(MsgKind.REQ_V, "llc", "cpu0.l1",
                          requestor="gpu0.l1"), homes) == "fwd"
    assert hop_class(_msg(MsgKind.FWD_GET_S, "l3", "cpu1.l1",
                          requestor="cpu0.l1"), homes) == "fwd"
    # a forward between two home nodes is still the level crossing
    # (both hop classes count as indirection)
    assert hop_class(_msg(MsgKind.FWD_GET_S, "l3", "gpu_l2",
                          requestor="cpu0.l1"), homes) == "level"
    # probes and their acks
    assert hop_class(_msg(MsgKind.INV, "llc", "cpu0.l1"),
                     homes) == "probe"
    assert hop_class(_msg(MsgKind.MESI_INV, "l3", "cpu1.l1"),
                     homes) == "probe"
    assert hop_class(_msg(MsgKind.ACK, "cpu0.l1", "llc"),
                     homes) == "probe"
    assert hop_class(_msg(MsgKind.RSP_RVK_O, "cpu0.l1", "llc"),
                     homes) == "probe"
    # owner answering a forward directly to the requestor
    assert hop_class(_msg(MsgKind.RSP_V, "cpu0.l1", "gpu0.l1"),
                     homes) == "fwd_rsp"
    assert hop_class(_msg(MsgKind.DATA_M, "cpu0.l1", "cpu1.l1"),
                     homes) == "fwd_rsp"


# ---------------------------------------------------------------------------
# profiler stitching
# ---------------------------------------------------------------------------
def test_profiler_stitches_one_transaction():
    recorder = make_recorder()
    profiler = TransactionProfiler()
    recorder.sinks.append(profiler)
    engine = recorder.engine

    engine.now = 100
    recorder.record("l1.issue", "cpu0.l1", line=0x40, req_id=9,
                    info="load")
    engine.now = 102                                  # 2 cycles of issue
    recorder.record("net.send", "cpu0.l1", dst="llc", line=0x40,
                    req_id=9, cls="ReqS", dur=10, hop="direct")
    engine.now = 112
    recorder.record("home.busy", "llc", line=0x40, req_id=9, dur=12)
    engine.now = 124
    recorder.record("net.send", "llc", dst="cpu1.l1", line=0x40,
                    req_id=9, cls="ReqS", dur=8, hop="fwd")
    engine.now = 132
    recorder.record("net.send", "cpu1.l1", dst="cpu0.l1", line=0x40,
                    req_id=9, cls="ReqS", dur=9, hop="fwd_rsp")
    engine.now = 145
    recorder.record("l1.complete", "cpu0.l1", line=0x40, req_id=9,
                    dur=45, info="load")

    assert profiler.completed == 1
    assert profiler.open_transactions() == 0
    device = profiler.by_device["cpu0.l1"]
    assert device["count"] == 1
    assert device["total"] == 45
    assert device["issue"] == 2
    assert device["network"] == 10
    assert device["indirection"] == 8
    assert device["fwd_rsp"] == 9
    assert device["home"] == 12
    # residual: 45 - (2 + 10 + 8 + 9 + 12) = 4
    assert device["other"] == 4
    assert profiler.indirection_cycles() == 8
    assert profiler.by_class["ReqS"] == {"direct": 10, "fwd": 8,
                                         "fwd_rsp": 9}
    assert profiler.sampler.count("txn.load") == 1
    assert profiler.sampler.mean("txn.load") == 45


def test_profiler_attributes_blocked_time():
    recorder = make_recorder()
    profiler = TransactionProfiler()
    recorder.sinks.append(profiler)
    engine = recorder.engine

    recorder.record("l1.issue", "gpu0.l1", line=0x80, req_id=3,
                    info="store")
    engine.now = 20
    recorder.record("home.defer", "llc", line=0x80, req_id=3)
    engine.now = 50
    recorder.record("home.replay", "llc", line=0x80, req_id=3)
    engine.now = 60
    recorder.record("l1.complete", "gpu0.l1", line=0x80, req_id=3,
                    info="store")
    assert profiler.by_device["gpu0.l1"]["blocked"] == 30
    report = profiler.format_report("test")
    assert "gpu0.l1" in report and "txn.store" in report


def test_profiler_snapshot_is_json_safe():
    profiler = TransactionProfiler()
    recorder = make_recorder()
    recorder.sinks.append(profiler)
    recorder.record("l1.issue", "cpu0.l1", req_id=1, info="load")
    recorder.engine.now = 7
    recorder.record("l1.complete", "cpu0.l1", req_id=1, info="load")
    snap = json.loads(json.dumps(profiler.snapshot()))
    assert snap["completed"] == 1
    assert snap["latency"]["txn.load"]["count"] == 1


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------
def test_chrome_export_round_trip(tmp_path):
    recorder = make_recorder()
    recorder.engine.now = 5
    recorder.record("net.send", "cpu0.l1", dst="llc", line=0x40,
                    req_id=1, cls="ReqV", dur=10, hop="direct",
                    info="ReqV")
    recorder.engine.now = 15
    recorder.record("net.deliver", "cpu0.l1", dst="llc", line=0x40,
                    req_id=1, cls="ReqV")
    path = tmp_path / "trace.json"
    payload = write_chrome_trace(str(path), [
        {"name": "SDD", "events": recorder.events(),
         "metrics": [(10, {"llc.hits": 3.0})]},
    ])
    assert validate_chrome_trace(payload) == []
    loaded = load_chrome_trace(str(path))
    assert loaded == payload
    events = loaded["traceEvents"]
    # process metadata first, then thread metadata, spans, instants,
    # and the counter track
    assert events[0] == {"ph": "M", "pid": 0, "name": "process_name",
                         "args": {"name": "SDD"}}
    spans = [e for e in events if e["ph"] == "X"]
    assert spans[0]["dur"] == 10 and spans[0]["ts"] == 5
    assert spans[0]["args"]["hop"] == "direct"
    instants = [e for e in events if e["ph"] == "i"]
    assert instants and instants[0]["s"] == "t"
    counters = [e for e in events if e["ph"] == "C"]
    assert counters == [{"ph": "C", "pid": 0, "name": "llc.hits",
                         "ts": 10, "args": {"value": 3.0}}]


def test_chrome_events_share_tid_per_component():
    recorder = make_recorder()
    for src in ("cpu0.l1", "llc", "cpu0.l1"):
        recorder.record("l1.state", src)
    events = chrome_trace_events(recorder.events(), pid=2)
    data = [e for e in events if e["ph"] != "M"]
    assert data[0]["tid"] == data[2]["tid"]      # both cpu0.l1
    assert data[0]["tid"] != data[1]["tid"]
    assert all(e["pid"] == 2 for e in events)


def test_validator_flags_backwards_timestamps_and_missing_dur():
    payload = {"traceEvents": [
        {"ph": "X", "pid": 0, "tid": 0, "ts": 10, "name": "a"},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 5, "name": "b", "s": "t"},
    ]}
    problems = validate_chrome_trace(payload)
    assert any("without dur" in p for p in problems)
    assert any("ts 5 < 10" in p for p in problems)
    assert validate_chrome_trace({}) == ["missing traceEvents list"]


# ---------------------------------------------------------------------------
# metrics epochs
# ---------------------------------------------------------------------------
def test_metrics_sample_on_epoch_boundaries():
    stats = StatsRegistry()
    series = MetricsTimeSeries(stats, interval=100)
    recorder = make_recorder()
    recorder.sinks.append(series)
    engine = recorder.engine

    stats.incr("x")
    engine.now = 50
    recorder.record("l1.state", "cpu0.l1")   # before first boundary
    assert series.samples == []
    engine.now = 130
    recorder.record("l1.state", "cpu0.l1")   # crosses t=100
    stats.incr("x")
    engine.now = 140
    recorder.record("l1.state", "cpu0.l1")   # same epoch: no sample
    engine.now = 460
    recorder.record("l1.state", "cpu0.l1")   # skips empty epochs
    series.finalize(500)
    series.finalize(500)                      # idempotent
    assert [ts for ts, _ in series.samples] == [130, 460, 500]
    assert series.counter_series("x") == [(130, 1.0), (460, 2.0),
                                          (500, 2.0)]
    assert series.counter_names() == ["x"]
    snap = json.loads(json.dumps(series.snapshot()))
    assert snap["interval"] == 100 and len(snap["samples"]) == 3


# ---------------------------------------------------------------------------
# timelines
# ---------------------------------------------------------------------------
def test_format_timeline_filters_and_limits():
    recorder = make_recorder(capacity=64)
    for i in range(6):
        recorder.engine.now = i
        recorder.record("home.busy", "llc",
                        line=64 * (i % 2), info=f"op{i}")
    text = format_timeline(recorder.events(), line=0x47)
    assert "op1" in text and "op0" not in text    # 0x47 -> line 0x40
    text = format_timeline(recorder.events(), device="llc", limit=2)
    assert "(4 earlier events omitted)" in text
    assert "op5" in text and "op0" not in text
    assert "no matching events" in \
        format_timeline(recorder.events(), device="nosuch")
