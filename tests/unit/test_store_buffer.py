"""Unit tests for the coalescing store buffer."""

import pytest

from repro.mem.store_buffer import StoreBuffer


def test_push_and_forward():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b11, {0: 5, 1: 6})
    assert buffer.forward(0x100, 0b11) == {0: 5, 1: 6}
    assert buffer.forward(0x100, 0b111) is None      # not fully covered


def test_coalescing_same_line():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b01, {0: 5})
    buffer.push(0x100, 0b10, {1: 6})
    entry = buffer.entry(0x100)
    assert entry.mask == 0b11
    assert buffer.words == 2
    assert len(buffer) == 1


def test_coalescing_overwrite_same_word():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b1, {0: 5})
    buffer.push(0x100, 0b1, {0: 9})
    assert buffer.words == 1
    assert buffer.forward(0x100, 0b1) == {0: 9}


def test_capacity_accounting():
    buffer = StoreBuffer(2)
    assert buffer.can_accept(0b11, 0x100)
    buffer.push(0x100, 0b11, {0: 1, 1: 2})
    assert not buffer.can_accept(0b1, 0x200)
    # coalescing into existing words is free
    assert buffer.can_accept(0b01, 0x100)


def test_issue_and_complete_cycle():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b1, {0: 5})
    entry = buffer.next_unissued()
    assert entry.line == 0x100
    buffer.mark_issued(0x100)
    assert buffer.next_unissued() is None
    done = buffer.complete(0x100)
    assert done.values == {0: 5}
    assert buffer.empty


def test_push_to_issued_line_rejected():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b1, {0: 5})
    buffer.mark_issued(0x100)
    with pytest.raises(RuntimeError):
        buffer.push(0x100, 0b10, {1: 6})


def test_complete_absent_rejected():
    buffer = StoreBuffer(16)
    with pytest.raises(RuntimeError):
        buffer.complete(0x100)


def test_fifo_issue_order():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b1, {0: 1})
    buffer.push(0x200, 0b1, {0: 2})
    assert buffer.next_unissued().line == 0x100
    buffer.mark_issued(0x100)
    assert buffer.next_unissued().line == 0x200


def test_issued_entry_still_forwards():
    buffer = StoreBuffer(16)
    buffer.push(0x100, 0b1, {0: 5})
    buffer.mark_issued(0x100)
    assert buffer.forward(0x100, 0b1) == {0: 5}
