"""Unit tests for address geometry helpers."""

from repro.coherence.addr import (FULL_LINE_MASK, LINE_BYTES, WORD_BYTES,
                                  WORDS_PER_LINE, iter_mask, line_of,
                                  mask_of, mask_of_words, popcount,
                                  split_line_range, word_addr, word_index)


def test_geometry_constants():
    assert LINE_BYTES == 64
    assert WORD_BYTES == 4
    assert WORDS_PER_LINE == 16
    assert FULL_LINE_MASK == 0xFFFF


def test_line_of_alignment():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 64
    assert line_of(0x12345) == 0x12340


def test_word_index_cycles_through_line():
    assert word_index(0) == 0
    assert word_index(4) == 1
    assert word_index(60) == 15
    assert word_index(64) == 0


def test_word_addr_roundtrip():
    for index in range(16):
        addr = word_addr(0x1000, index)
        assert line_of(addr) == 0x1000
        assert word_index(addr) == index


def test_mask_of_single_word():
    assert mask_of(0) == 1
    assert mask_of(4) == 2
    assert mask_of(60) == 1 << 15


def test_mask_of_words_and_iter_mask_roundtrip():
    indices = [0, 3, 7, 15]
    mask = mask_of_words(indices)
    assert list(iter_mask(mask)) == indices


def test_popcount():
    assert popcount(0) == 0
    assert popcount(FULL_LINE_MASK) == 16
    assert popcount(0b1010) == 2


def test_split_line_range_within_line():
    pairs = split_line_range(0x100, 8)
    assert pairs == [(0x100, 0b11)]


def test_split_line_range_spanning_lines():
    pairs = split_line_range(60, 8)
    assert pairs == [(0, 1 << 15), (64, 1)]


def test_split_line_range_empty():
    assert split_line_range(0x100, 0) == []


def test_split_line_range_subword_rounds_to_word():
    pairs = split_line_range(0x102, 1)
    assert pairs == [(0x100, 1)]
