"""Unit tests for the reliable-delivery sublayer (repro.network.reliable):
receiver channel admit semantics, ack-driven unacked cleanup, timeout
retransmission with capped exponential backoff, reorder re-sequencing,
dup suppression, dead-link escalation into TransportError, and the
builder's structural passthrough (plain Network unless a delivery-fault
class is armed)."""

import pytest

from repro.coherence.messages import Message, MsgKind
from repro.faults.injector import FaultInjector
from repro.network import Network, ReliableNetwork, TransportError
from repro.network.noc import LatencyModel
from repro.network.reliable import _RecvChannel
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.system import (FaultConfig, LinkWindow, build_system,
                          scaled_config)

RTO = 100


class Sink:
    def __init__(self, name, engine):
        self.name = name
        self.engine = engine
        self.received = []

    def receive(self, msg):
        self.received.append((self.engine.now, msg))


def _rig(faults=None, rto=RTO, rto_cap=4 * RTO, dead_cycles=200_000):
    engine = Engine()
    stats = StatsRegistry()
    network = ReliableNetwork(engine, stats, LatencyModel(default=10),
                              rto=rto, rto_cap=rto_cap,
                              dead_cycles=dead_cycles)
    if faults is not None:
        network.fault_injector = FaultInjector(faults, stats)
    sink = Sink("b", engine)
    network.register(Sink("a", engine))
    network.register(sink)
    return engine, network, sink


def _msg(line=0x100):
    return Message(MsgKind.REQ_V, line, 1, "a", "b")


# -- receiver channel semantics ----------------------------------------------
@pytest.mark.tier1
def test_recv_channel_in_order_delivery():
    channel = _RecvChannel()
    m0, m1 = _msg(), _msg()
    assert channel.admit(0, m0) == ([m0], "deliver")
    assert channel.admit(1, m1) == ([m1], "deliver")
    assert channel.expect == 2


@pytest.mark.tier1
def test_recv_channel_buffers_gap_and_drains_in_order():
    channel = _RecvChannel()
    m0, m1, m2 = _msg(0x100), _msg(0x140), _msg(0x180)
    assert channel.admit(2, m2) == ([], "buffer")
    assert channel.admit(1, m1) == ([], "buffer")
    ready, verdict = channel.admit(0, m0)
    assert verdict == "deliver"
    assert ready == [m0, m1, m2]            # gap filled: strict order
    assert channel.expect == 3
    assert not channel.buffer


@pytest.mark.tier1
def test_recv_channel_drops_stale_and_buffered_duplicates():
    channel = _RecvChannel()
    m0 = _msg()
    channel.admit(0, m0)
    assert channel.admit(0, _msg()) == ([], "dup")      # stale
    channel.admit(2, _msg())
    assert channel.admit(2, _msg()) == ([], "dup")      # already buffered


# -- end-to-end: exactly-once FIFO over a clean wire -------------------------
@pytest.mark.tier1
def test_clean_wire_delivers_exactly_once_and_drains():
    engine, network, sink = _rig()
    first, second = _msg(0x100), _msg(0x140)
    network.send(first)
    network.send(second)
    engine.run()
    assert [msg for _, msg in sink.received] == [first, second]
    assert first.meta["rseq"] == 0 and second.meta["rseq"] == 1
    assert network.stats.get("transport.acks") == 2
    assert network.stats.get("transport.retransmits") == 0
    # acks drained the unacked buffers and cancelled the timer, so the
    # run terminated (we got here) and nothing is outstanding
    assert network.unacked_messages() == []
    snapshot = network.transport_snapshot()
    assert all(row["unacked"] == 0 for row in snapshot["send"])


# -- loss recovery ------------------------------------------------------------
@pytest.mark.tier1
def test_dropped_message_is_retransmitted_after_rto():
    # outage covers the original send; the first retransmit (at t=RTO,
    # past the window) gets through
    faults = FaultConfig(seed=0,
                         link_down=(LinkWindow(start=0, length=50),))
    engine, network, sink = _rig(faults=faults)
    network.send(_msg())
    engine.run()
    assert len(sink.received) == 1
    assert sink.received[0][0] >= RTO       # arrived via the retransmit
    assert network.stats.get("faults.link_down_dropped") == 1
    assert network.stats.get("transport.retransmits") == 1
    assert network.unacked_messages() == []


@pytest.mark.tier1
def test_retransmit_backoff_doubles_and_caps():
    # outage long enough to eat the original + three retransmits: ticks
    # at 100 (rto->200), 300 (->400), 700 (capped at 400), 1100 (past
    # the window: delivered)
    faults = FaultConfig(seed=0,
                         link_down=(LinkWindow(start=0, length=1000),))
    engine, network, sink = _rig(faults=faults, rto=RTO, rto_cap=400)
    network.send(_msg())
    engine.run()
    assert len(sink.received) == 1
    assert network.stats.get("transport.retransmits") == 4
    assert network.stats.get("faults.link_down_dropped") == 4
    # ack progress reset the backoff for the channel's next loss
    channel = network._send_channels[("a", "b")]
    assert channel.rto == RTO
    assert channel.timer is None


@pytest.mark.tier1
def test_retransmits_send_pristine_clones():
    # receivers mutate what they are handed; a retransmitted message
    # must not carry those mutations
    faults = FaultConfig(seed=0,
                         link_down=(LinkWindow(start=0, length=50),))
    engine, network, sink = _rig(faults=faults)
    original = _msg()
    original.data[0] = 41
    network.send(original)
    engine.run()
    (_, delivered), = sink.received
    assert delivered is not original        # a clone crossed the wire
    assert delivered.data == {0: 41}


# -- duplicate suppression ----------------------------------------------------
@pytest.mark.tier1
def test_wire_duplicates_are_suppressed():
    faults = FaultConfig(seed=0, dup_prob=1.0)
    engine, network, sink = _rig(faults=faults)
    network.send(_msg())
    engine.run()
    assert len(sink.received) == 1
    # the data message was duplicated — and so were the acks, which
    # ride the same faulty wire (idempotent, so merely counted)
    assert network.stats.get("faults.duplicated") >= 1
    assert network.stats.get("transport.dup_dropped") == 1
    # the dup re-acked: two wire arrivals, two cumulative acks
    assert network.stats.get("transport.acks") == 2


# -- reorder re-sequencing ----------------------------------------------------
class _ScriptedInjector:
    """Deterministic injector stand-in: scripted per-message skew."""

    unreliable = True
    sockets = {}

    def __init__(self, skews):
        self._skews = list(skews)

    def drop_reason(self, msg, now):
        return None

    def should_duplicate(self, msg):
        return False

    def extra_delay(self, msg, now):
        return 0

    def reorder_skew(self, msg):
        return self._skews.pop(0) if self._skews else 0


@pytest.mark.tier1
def test_reordered_messages_are_resequenced_before_delivery():
    engine, network, sink = _rig()
    network.fault_injector = _ScriptedInjector(skews=[50, 0])
    first, second = _msg(0x100), _msg(0x140)
    network.send(first)                     # skewed 50 cycles late
    network.send(second)                    # overtakes it on the wire
    engine.run()
    # the transport held the early arrival until the gap filled
    assert [msg for _, msg in sink.received] == [first, second]
    assert network.stats.get("transport.reorder_buffered") == 1
    assert network.unacked_messages() == []


# -- dead-link escalation -----------------------------------------------------
@pytest.mark.tier1
def test_permanently_dead_link_raises_transport_error():
    faults = FaultConfig(
        seed=0, link_down=(LinkWindow(start=0, length=10 ** 9),))
    engine, network, sink = _rig(faults=faults, dead_cycles=2_000)
    network.send(_msg())
    with pytest.raises(TransportError) as excinfo:
        engine.run()
    assert "a->b" in str(excinfo.value)
    diag = excinfo.value.diagnostic
    assert diag["transport"]["send"][0]["unacked"] == 1
    assert any(row["src"] == "a" for row in diag["fabric"])


# -- structural passthrough ---------------------------------------------------
@pytest.mark.tier1
def test_builder_keeps_plain_network_for_timing_faults():
    system = build_system(scaled_config(
        "SDD", 2, 2, faults=FaultConfig.stress(1)))
    assert type(system.network) is Network


@pytest.mark.tier1
def test_builder_interposes_reliable_network_when_unreliable():
    system = build_system(scaled_config(
        "SDD", 2, 2, faults=FaultConfig.unreliable_stress(1)))
    assert isinstance(system.network, ReliableNetwork)
    assert system.network.diagnostic_source is system
    assert system.fault_injector.sockets == {}      # p2p: no sockets


@pytest.mark.tier1
def test_builder_installs_socket_map_on_multi_socket_fabric():
    system = build_system(scaled_config(
        "SMG", 2, 2, faults=FaultConfig.unreliable_stress(1),
        topology="multi_socket", num_sockets=2))
    sockets = system.fault_injector.sockets
    assert sockets                                  # endpoints mapped
    assert set(sockets.values()) == {0, 1}
