"""Graceful-degradation tests for the sweep harness: crashed workers,
cells that blow their wall-clock budget, deterministic cell errors, and
corrupt cache entries must each degrade to per-cell error records while
every healthy cell's result survives.

The misbehaving workload generators live at module level so worker
processes can re-import them through ``CellSpec.generator_ref``.
"""

import json
import os
import time
import warnings

import pytest

from repro.analysis.report import (ConfigResult, WorkloadResult,
                                   format_figure)
from repro.analysis.sweep import CellSpec, ResultCache, run_sweep
from repro.workloads import MICROBENCHMARKS

SMALL = dict(num_cpus=2, num_gpus=2, warps_per_cu=1)


# -- module-level generators (importable by ref in workers) -------------------
def crashing_generator(**kwargs):
    """Simulates a hard worker death (segfault, OOM kill)."""
    os._exit(3)


def sleeping_generator(**kwargs):
    time.sleep(60)
    return MICROBENCHMARKS["ReuseS"](**kwargs)     # pragma: no cover


def erroring_generator(**kwargs):
    raise ValueError("synthetic deterministic failure")


def good_spec():
    return CellSpec.make("ReuseS", "SDD", SMALL)


# -- crashed workers ----------------------------------------------------------
def test_crashed_cell_degrades_to_error_record():
    specs = [good_spec(),
             CellSpec.make("Crash", "SDD", SMALL,
                           generator=crashing_generator)]
    summary = run_sweep(specs, jobs=2, cell_retries=1)
    assert [(c.workload, c.config) for c in summary.cells] == \
        [("ReuseS", "SDD")]
    assert summary.cells[0].memory_ok is True
    (error,) = summary.errors
    assert error.kind == "crash"
    assert error.workload == "Crash"
    assert error.attempts == 2          # original + one bounded re-run
    assert "exit" in error.message
    assert "failed: 1" in summary.format_summary()
    assert "-- no result --" in summary.format_summary()


# -- wall-clock timeouts ------------------------------------------------------
def test_timed_out_cell_is_terminated_and_recorded():
    specs = [CellSpec.make("Sleeper", "SDD", SMALL,
                           generator=sleeping_generator)]
    started = time.perf_counter()
    summary = run_sweep(specs, jobs=1, cell_timeout=1.0, cell_retries=0)
    assert time.perf_counter() - started < 30
    assert summary.cells == []
    (error,) = summary.errors
    assert error.kind == "timeout"
    assert error.attempts == 1
    assert "wall-clock" in error.message


# -- deterministic exceptions -------------------------------------------------
def test_serial_cell_exception_is_not_retried():
    summary = run_sweep([CellSpec.make("Boom", "SDD", SMALL,
                                       generator=erroring_generator)],
                        jobs=1, cell_retries=3)
    (error,) = summary.errors
    assert error.kind == "error"
    assert error.attempts == 1          # deterministic: retry is futile
    assert "synthetic deterministic failure" in error.message
    payload = summary.to_json()
    assert payload["errors"][0]["kind"] == "error"
    assert json.dumps(payload)          # stays JSON-serializable


# -- partial grids in reports -------------------------------------------------
def test_workload_results_carry_error_annotations():
    specs = [good_spec(),
             CellSpec.make("ReuseS", "HMG", SMALL,
                           generator=erroring_generator),
             CellSpec.make("Boom", "SDD", SMALL,
                           generator=erroring_generator)]
    summary = run_sweep(specs, jobs=1)
    by_name = {wr.workload: wr for wr in summary.workload_results()}
    assert set(by_name) == {"ReuseS", "Boom"}
    assert "SDD" in by_name["ReuseS"].results
    assert "HMG" in by_name["ReuseS"].errors
    assert by_name["Boom"].results == {}        # error-only workload


def test_format_figure_renders_failed_cells_as_gaps():
    ok = ConfigResult("HMG", cycles=100, network_bytes=1000.0,
                      traffic={})
    wr = WorkloadResult("Foo", {"HMG": ok},
                        errors={"SDD": "timeout after 2 attempt(s)"})
    figure = format_figure([wr], "partial grid")
    assert "FAIL" in figure
    assert "failed cells:" in figure
    assert "! Foo/SDD timeout" in figure


# -- corrupt cache quarantine -------------------------------------------------
def test_corrupt_cache_entry_quarantined_and_resimulated(tmp_path):
    cache = ResultCache(tmp_path)
    summary = run_sweep([good_spec()], jobs=1, cache=cache)
    assert summary.simulated == 1
    (path,) = tmp_path.glob("*.json")
    path.write_text('{"workload": "ReuseS"')        # truncated write

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rerun = run_sweep([good_spec()], jobs=1, cache=cache)
    assert rerun.cache_hits == 0 and rerun.simulated == 1
    assert any("quarantined" in str(w.message) for w in caught)
    assert path.with_name(path.name + ".corrupt").exists()
    assert path.exists()                # rewritten by the re-simulation

    warm = run_sweep([good_spec()], jobs=1, cache=cache)
    assert warm.cache_hits == 1


def test_schema_drift_entry_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"workload": "X"})              # missing keys
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert cache.get("k1") is None
    assert caught
    assert (tmp_path / "k1.json.corrupt").exists()
    assert cache.clear() == 1                       # corpses swept too
    assert not list(tmp_path.glob("*"))


# -- unreliable-fabric sweep axes ---------------------------------------------
def _faulty_spec(**fault_kwargs):
    return CellSpec.make("ReuseS", "SDD", dict(SMALL, **fault_kwargs))


def test_fault_kwargs_are_stripped_from_generator_kwargs():
    spec = _faulty_spec(loss=0.02, dup=0.01, reorder_prob=0.05,
                       reorder_window=32, link_down=("2000:1500",),
                       fault_seed=3)
    assert spec.workload_kwargs() == SMALL


def test_fault_kwargs_build_the_cell_fault_config():
    spec = _faulty_spec(loss=0.02, dup=0.01, reorder_prob=0.05,
                       reorder_window=32,
                       link_down=("2000:1500", "100:50:c0:llc*"),
                       fault_seed=3)
    faults = spec.system_config().faults
    assert faults is not None and faults.unreliable
    assert faults.seed == 3
    assert faults.drop_prob == 0.02
    assert faults.dup_prob == 0.01
    assert (faults.reorder_prob, faults.reorder_window) == (0.05, 32)
    assert [(w.start, w.length, w.src, w.dst) for w in faults.link_down] \
        == [(2000, 1500, "*", "*"), (100, 50, "c0", "llc*")]


def test_reorder_window_defaults_when_only_prob_given():
    faults = _faulty_spec(reorder_prob=0.1).system_config().faults
    assert faults.reorder_window == 64


def test_plain_spec_has_no_fault_config():
    assert good_spec().system_config().faults is None


def test_fault_axes_change_the_cache_key():
    from repro.analysis.sweep import cell_key

    assert cell_key(good_spec()) != cell_key(_faulty_spec(loss=0.02))
    assert cell_key(_faulty_spec(loss=0.02)) != \
        cell_key(_faulty_spec(loss=0.02, fault_seed=9))


def test_faulty_cell_simulates_and_validates_memory():
    summary = run_sweep([_faulty_spec(loss=0.02, dup=0.02,
                                      fault_seed=1)], jobs=1)
    (cell,) = summary.cells
    assert cell.memory_ok is True
    assert cell.stats().get("transport.acks") > 0
