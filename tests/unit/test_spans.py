"""Span-tree builder and exact-partition critical-path decomposition,
driven with synthetic trace-event streams."""

import json

from repro.obs import SPAN_STAGES, SpanCollector, TraceEvent, decompose


# ---------------------------------------------------------------------------
# decompose
# ---------------------------------------------------------------------------
def test_decompose_partitions_exactly():
    #  0        10        25   35        55   65           100
    #  |-issue--|--queue--|    |-flight--|    |-retransmit-|->
    # flight [30, 45) overlaps queue's tail?  no — craft overlaps:
    intervals = [
        ("issue", 0, 10, "cpu0.l1"),
        ("queue", 10, 35, "llc0"),
        ("flight", 30, 45, "a->b"),          # tail under queue loses
        ("probe", 40, 55, "b->c"),           # beats flight on [40,45)
        ("retransmit", 50, 65, "a->b"),      # beats probe on [50,55)
    ]
    stages, segments = decompose(0, 100, intervals)
    assert stages == {"issue": 10, "queue": 25, "flight": 5,
                      "probe": 10, "retransmit": 15, "other": 35}
    assert sum(stages.values()) == 100
    # segments tile [0, 100) without gap or overlap
    assert segments[0][1] == 0 and segments[-1][2] == 100
    for left, right in zip(segments, segments[1:]):
        assert left[2] == right[1]
    # overlap resolution: queue wins over flight on [30, 35)
    assert ("queue", 10, 35, "llc0") in segments
    assert ("flight", 35, 40, "a->b") in segments
    assert ("retransmit", 50, 65, "a->b") in segments


def test_decompose_clips_to_window_and_handles_empty():
    stages, segments = decompose(10, 20, [("flight", 0, 100, "x->y")])
    assert stages["flight"] == 10 and sum(stages.values()) == 10
    assert segments == [("flight", 10, 20, "x->y")]

    stages, segments = decompose(5, 5, [("queue", 0, 10, "llc")])
    assert sum(stages.values()) == 0 and segments == []


def test_decompose_merges_adjacent_same_stage_segments():
    intervals = [("flight", 0, 10, "a->b"), ("flight", 10, 20, "a->b")]
    stages, segments = decompose(0, 20, intervals)
    assert stages["flight"] == 20
    assert segments == [("flight", 0, 20, "a->b")]


# ---------------------------------------------------------------------------
# collector
# ---------------------------------------------------------------------------
def _drive(collector, events):
    for event in events:
        collector(event)


def test_collector_builds_exact_span():
    spans = SpanCollector(top_k=4)
    _drive(spans, [
        TraceEvent(0, "l1.issue", "cpu0.l1", line=0x40, req_id=1,
                   info="GetO"),
        TraceEvent(8, "net.send", "cpu0.l1", dst="llc0", req_id=1,
                   dur=12),
        TraceEvent(20, "home.busy", "llc0", req_id=1, dur=6),
        TraceEvent(26, "net.send", "llc0", dst="cpu0.l1", req_id=1,
                   dur=12),
        TraceEvent(40, "l1.complete", "cpu0.l1", req_id=1),
    ])
    assert spans.completed == 1 and not spans._open
    (record,) = spans.recent
    assert record["total"] == 40
    assert record["stages"] == {"issue": 8, "queue": 6, "flight": 24,
                                "probe": 0, "retransmit": 0, "other": 2}
    assert sum(record["stages"].values()) == record["total"]
    assert spans.shard_cycles == {"llc0": 6}
    assert spans.link_cycles == {"cpu0.l1->llc0": 12,
                                 "llc0->cpu0.l1": 12}
    # contention on the line = queue + retransmit + probe
    assert spans.line_cycles == {0x40: 6}


def test_collector_probe_defer_and_retransmit_attribution():
    spans = SpanCollector(top_k=4)
    _drive(spans, [
        TraceEvent(0, "l1.issue", "gpu0.l1", line=0x80, req_id=7,
                   info="GetV"),
        TraceEvent(4, "net.send", "gpu0.l1", dst="llc0", req_id=7,
                   dur=10),
        TraceEvent(14, "home.defer", "llc0", req_id=7),
        TraceEvent(30, "home.replay", "llc0", req_id=7),
        # probe fan-out wins over plain flight on overlap
        TraceEvent(30, "net.send", "llc0", dst="cpu0.l1", req_id=7,
                   dur=8, hop="probe"),
        # retransmit instant at 50; the 12-cycle RTO wait precedes it
        TraceEvent(50, "transport.retx", "llc0", dst="gpu0.l1",
                   req_id=7, dur=12),
        TraceEvent(50, "net.send", "llc0", dst="gpu0.l1", req_id=7,
                   dur=10),
        TraceEvent(60, "l1.complete", "gpu0.l1", req_id=7),
    ])
    (record,) = spans.recent
    assert record["stages"] == {"issue": 4, "queue": 16, "flight": 20,
                                "probe": 8, "retransmit": 12,
                                "other": 0}
    assert sum(record["stages"].values()) == 60
    assert spans.shard_cycles == {"llc0": 16}
    assert spans.link_cycles == {"gpu0.l1->llc0": 10,
                                 "llc0->cpu0.l1": 8,
                                 "llc0->gpu0.l1": 22}
    assert spans.line_cycles == {0x80: 16 + 8 + 12}


def test_orphan_events_are_ignored():
    spans = SpanCollector()
    _drive(spans, [
        TraceEvent(5, "net.send", "cpu0.l1", dst="llc0", req_id=99,
                   dur=10),
        TraceEvent(9, "home.busy", "llc0", req_id=99, dur=3),
        TraceEvent(12, "transport.retx", "llc0", dst="cpu0.l1",
                   req_id=99, dur=4),
        TraceEvent(20, "l1.complete", "cpu0.l1", req_id=99),
    ])
    assert spans.completed == 0
    assert not spans._open and not spans.recent


def test_top_k_rollups_rank_by_cycles():
    spans = SpanCollector(top_k=2)
    for index, (line, queue_cycles) in enumerate(
            [(0x100, 30), (0x200, 20), (0x300, 10)]):
        req = index + 1
        home = f"llc{index}"
        base = index * 1000
        _drive(spans, [
            TraceEvent(base, "l1.issue", "cpu0.l1", line=line,
                       req_id=req, info="GetO"),
            TraceEvent(base + 1, "net.send", "cpu0.l1", dst=home,
                       req_id=req, dur=2),
            TraceEvent(base + 3, "home.busy", home, req_id=req,
                       dur=queue_cycles),
            TraceEvent(base + 3 + queue_cycles, "l1.complete",
                       "cpu0.l1", req_id=req),
        ])
    assert spans.top_lines() == [(0x100, 30.0), (0x200, 20.0)]
    assert spans.top_shards() == [("llc0", 30.0), ("llc1", 20.0)]
    assert spans.top_shards(3) == [("llc0", 30.0), ("llc1", 20.0),
                                   ("llc2", 10.0)]
    # slowest table is bounded by top_k and sorted by latency
    assert len(spans.slowest) == 2
    assert [r["total"] for r in spans.slowest] == [33.0, 23.0]


def test_snapshot_is_json_round_trip_exact():
    spans = SpanCollector(top_k=2)
    _drive(spans, [
        TraceEvent(0, "l1.issue", "cpu0.l1", line=0xabc0, req_id=3,
                   info="GetS"),
        TraceEvent(2, "net.send", "cpu0.l1", dst="llc0", req_id=3,
                   dur=5),
        TraceEvent(7, "home.busy", "llc0", req_id=3, dur=4),
        TraceEvent(11, "l1.complete", "cpu0.l1", req_id=3),
    ])
    snapshot = spans.snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert snapshot["completed"] == 1
    assert snapshot["top_lines"] == [["0xabc0", 4.0]]


def test_format_span_and_report_smoke():
    spans = SpanCollector(top_k=2)
    _drive(spans, [
        TraceEvent(0, "l1.issue", "cpu0.l1", line=0x40, req_id=1,
                   info="GetO"),
        TraceEvent(4, "net.send", "cpu0.l1", dst="llc0", req_id=1,
                   dur=10),
        TraceEvent(20, "l1.complete", "cpu0.l1", req_id=1),
    ])
    text = spans.format_span(spans.recent[0])
    assert "req 1 GetO cpu0.l1 line 0x40" in text
    assert "issue" in text and "flight" in text
    report = spans.format_report("unit test")
    assert report.startswith("== unit test ==")
    for stage in SPAN_STAGES:
        assert stage in report
    assert "slowest requests:" in report
    # empty collector renders without the stage table
    assert SpanCollector().format_report().count("\n") == 1
