"""Prometheus text-exposition exporter vs the validating parser, JSON
snapshot round-trips, and the empty-trace validator pin."""

import json

import pytest

from repro.obs import (MetricsRegistry, parse_prometheus_text,
                       prometheus_text, registry_samples,
                       sanitize_metric_name, stats_samples,
                       validate_chrome_trace)
from repro.obs.prometheus import escape_label_value
from repro.sim.stats import StatsRegistry


# ---------------------------------------------------------------------------
# name + escaping
# ---------------------------------------------------------------------------
def test_sanitize_metric_name():
    assert sanitize_metric_name("home.queue_depth") == \
        "repro_home_queue_depth"
    assert sanitize_metric_name("a.b.c") == "repro_a_b_c"
    with pytest.raises(ValueError):
        sanitize_metric_name("bad name")


def test_label_value_escaping_round_trips_through_parser():
    nasty = {
        "plain": "llc0",
        "quote": 'say "hi"',
        "backslash": "a\\b",
        "newline": "two\nlines",
        "brace": "a}b{c",          # embedded } must not end the body
        "mixed": 'x\\"y\nz}',
    }
    registry = MetricsRegistry()
    for key, value in nasty.items():
        registry.gauge("esc.check", labels={"case": key,
                                            "payload": value}).set(1)
    text = prometheus_text(registry_samples(registry))
    parsed = parse_prometheus_text(text)
    recovered = {labels["case"]: labels["payload"]
                 for name, labels, _ in parsed
                 if name == "repro_esc_check"}
    assert recovered == nasty


def test_escape_label_value_is_exposition_compliant():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


# ---------------------------------------------------------------------------
# exposition rendering
# ---------------------------------------------------------------------------
def test_exposition_families_and_series():
    registry = MetricsRegistry()
    registry.counter("req.count", help="requests", unit="requests",
                     labels={"shard": "llc0"}).inc(3)
    registry.counter("req.count", labels={"shard": "llc1"}).inc(4)
    gauge = registry.gauge("queue.depth", help="depth")
    gauge.set(9)
    gauge.set(2)
    histogram = registry.histogram("lat.dist", help="latency",
                                   unit="cycles")
    for value in (1, 3, 3, 100):
        histogram.observe(value)
    text = prometheus_text(registry_samples(registry))

    assert text.count("# TYPE repro_req_count counter") == 1
    assert 'repro_req_count{shard="llc0"} 3' in text
    assert 'repro_req_count{shard="llc1"} 4' in text
    # gauges also expose their high-water series
    assert "repro_queue_depth 2" in text
    assert "repro_queue_depth_high_water 9" in text
    # histogram: cumulative buckets, +Inf, sum, count
    assert 'repro_lat_dist_bucket{le="+Inf"} 4' in text
    assert "repro_lat_dist_sum 107" in text
    assert "repro_lat_dist_count 4" in text
    parsed = parse_prometheus_text(text)
    inf_rows = [(name, labels, value) for name, labels, value in parsed
                if labels.get("le") == "+Inf"]
    assert inf_rows == [("repro_lat_dist_bucket", {"le": "+Inf"}, 4.0)]
    # cumulative monotonicity across the finite bounds
    bounds = [(float(labels["le"]), value)
              for name, labels, value in parsed
              if name == "repro_lat_dist_bucket"
              and labels["le"] != "+Inf"]
    assert bounds == sorted(bounds)
    assert [count for _, count in bounds] == \
        sorted(count for _, count in bounds)


def test_stats_samples_flatten_groups_into_label_dimension():
    stats = StatsRegistry()
    stats.incr("l1.hits", 5)
    stats.incr_group("dir.state", "M", 2)
    stats.incr_group("dir.state", "S", 7)
    text = prometheus_text(stats_samples(stats))
    parsed = dict(((name, tuple(sorted(labels.items()))), value)
                  for name, labels, value in parse_prometheus_text(text))
    assert parsed[("repro_l1_hits", ())] == 5.0
    assert parsed[("repro_dir_state", (("key", "M"),))] == 2.0
    assert parsed[("repro_dir_state", (("key", "S"),))] == 7.0


# ---------------------------------------------------------------------------
# parser strictness
# ---------------------------------------------------------------------------
def test_parser_rejects_malformed_input():
    for bad in (
        "1bad_name 3\n",                          # name grammar
        'metric{key="unterminated} 3\n',          # unbalanced quote
        'metric{key="x",key="y"} 3\n',            # duplicate label
        'metric{key="a\\qb"} 3\n',                # bad escape
        "metric notanumber\n",                    # bad value
        "# TYPE m counter\n# TYPE m gauge\nm 1\n",  # re-declared TYPE
        "# TYPE m frobnicator\nm 1\n",            # unknown kind
    ):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


def test_parser_accepts_comments_blanks_and_infinities():
    parsed = parse_prometheus_text(
        "# HELP m help text\n"
        "# TYPE m gauge\n"
        "\n"
        "m +Inf\n"
        "m2 -Inf\n"
        "m3 2.5\n")
    assert parsed[0][2] == float("inf")
    assert parsed[1][2] == float("-inf")
    assert parsed[2] == ("m3", {}, 2.5)


# ---------------------------------------------------------------------------
# JSON snapshot round-trip
# ---------------------------------------------------------------------------
def test_registry_snapshot_survives_json_round_trip():
    registry = MetricsRegistry()
    registry.counter("a.count", labels={"x": "1"}).inc(2)
    registry.gauge("a.gauge").set(3.5)
    registry.histogram("a.hist").observe(17)
    registry.alias("llc", "home.<shard>")
    snapshot = registry.snapshot()
    rehydrated = json.loads(json.dumps(snapshot))
    assert rehydrated == snapshot
    # and rendering the rehydrated samples still produces valid text
    text = prometheus_text(rehydrated["metrics"])
    assert parse_prometheus_text(text)


# ---------------------------------------------------------------------------
# chrome-trace validator pin
# ---------------------------------------------------------------------------
def test_validate_chrome_trace_accepts_empty_trace():
    assert validate_chrome_trace({"traceEvents": []}) == []
