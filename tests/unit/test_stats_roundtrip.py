"""Regression tests for the stats layer's snapshot semantics: deep
copies (no live defaultdict ever escapes), exact JSON round-trips, and
the LatencySampler's histogram percentiles and exact merges."""

import json

from repro.sim.stats import (HISTOGRAM_BUCKETS, LatencySampler,
                             StatsRegistry)


# ---------------------------------------------------------------------------
# StatsRegistry
# ---------------------------------------------------------------------------
def _registry():
    stats = StatsRegistry()
    stats.incr("llc.hits", 3)
    stats.set("execution.cycles", 1234)
    stats.incr_group("traffic.bytes", "ReqV", 64)
    stats.incr_group("traffic.bytes", "RspV", 128)
    return stats


def test_snapshot_is_a_deep_copy():
    stats = _registry()
    snap = stats.snapshot()
    snap["counters"]["llc.hits"] = 999
    snap["groups"]["traffic.bytes"]["ReqV"] = 999
    snap["groups"]["new"] = {"x": 1}
    assert stats.get("llc.hits") == 3
    assert stats.group("traffic.bytes")["ReqV"] == 64
    assert "new" not in list(stats.groups())
    # two snapshots of the same state serialize identically
    assert json.dumps(stats.snapshot(), sort_keys=True) == \
        json.dumps(_registry().snapshot(), sort_keys=True)


def test_snapshot_round_trips_exactly():
    stats = _registry()
    snap = stats.snapshot()
    via_json = json.loads(json.dumps(snap))
    rebuilt = StatsRegistry.from_snapshot(via_json)
    assert rebuilt.snapshot() == snap
    assert rebuilt.counters() == stats.counters()
    assert rebuilt.group("traffic.bytes") == stats.group("traffic.bytes")


def test_format_table_does_not_mutate_registry():
    stats = _registry()
    before = stats.snapshot()
    text = stats.format_table("t")
    assert "llc.hits" in text and "traffic.bytes" in text
    assert stats.snapshot() == before


# ---------------------------------------------------------------------------
# LatencySampler
# ---------------------------------------------------------------------------
def test_sampler_percentiles_track_the_tail():
    sampler = LatencySampler()
    for _ in range(99):
        sampler.sample("lat", 10)
    sampler.sample("lat", 1000)
    # p50 lands in the bucket holding 10 ([8, 16) -> upper bound 16)
    assert 10 <= sampler.percentile("lat", 50) <= 16
    # p99 must see the outlier's bucket, clamped to the observed max
    assert sampler.percentile("lat", 99.5) == 1000
    assert sampler.percentile("lat", 0) >= sampler.minimum("lat")
    summary = sampler.summary("lat")
    assert summary["count"] == 100 and summary["max"] == 1000
    assert summary["p50"] <= summary["p95"] <= summary["p99"]


def test_sampler_percentile_exact_for_single_bucket():
    sampler = LatencySampler()
    for _ in range(7):
        sampler.sample("x", 42)
    for p in (1, 50, 95, 99, 100):
        assert sampler.percentile("x", p) == 42
    assert sampler.percentile("missing", 50) == 0.0


def test_sampler_merge_is_exact():
    left, right, combined = (LatencySampler() for _ in range(3))
    for value in (1, 5, 9, 200):
        left.sample("lat", value)
        combined.sample("lat", value)
    for value in (3, 7, 100000):
        right.sample("lat", value)
        combined.sample("lat", value)
    right.sample("other", 2)
    combined.sample("other", 2)
    left.merge(right)
    assert left.snapshot() == combined.snapshot()
    for p in (50, 95, 99):
        assert left.percentile("lat", p) == combined.percentile("lat", p)


def test_sampler_snapshot_round_trips_exactly():
    sampler = LatencySampler()
    for value in (0, 1, 2, 3.5, 1000, 2 ** 50):
        sampler.sample("lat", value)
    snap = sampler.snapshot()
    via_json = json.loads(json.dumps(snap))
    rebuilt = LatencySampler.from_snapshot(via_json)
    assert rebuilt.snapshot() == snap
    assert rebuilt.percentile("lat", 99) == sampler.percentile("lat", 99)
    # huge values clamp into the last bucket
    assert max(int(b) for b in snap["lat"]["hist"]) \
        == HISTOGRAM_BUCKETS - 1


def test_sampler_accepts_legacy_snapshot_format():
    rebuilt = LatencySampler.from_snapshot(
        {"lat": [4, 100.0, 10.0, 40.0]})
    assert rebuilt.count("lat") == 4
    assert rebuilt.mean("lat") == 25.0
    # no histogram: percentile degrades to the observed max
    assert rebuilt.percentile("lat", 50) == 40.0
