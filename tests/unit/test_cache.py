"""Unit tests for the set-associative cache array."""

import enum

import pytest

from repro.coherence.addr import FULL_LINE_MASK
from repro.mem.cache import CacheArray


class St(enum.Enum):
    I = "I"
    V = "V"
    O = "O"


def make_array(sets=4, assoc=2):
    return CacheArray(64 * sets * assoc, assoc, St.I)


def test_install_and_lookup():
    array = make_array()
    entry = array.install(0x100)
    assert array.lookup(0x100) is entry
    assert array.lookup(0x140) is None


def test_install_duplicate_rejected():
    array = make_array()
    array.install(0x100)
    with pytest.raises(RuntimeError):
        array.install(0x100)


def test_victim_none_while_capacity_free():
    array = make_array(sets=1, assoc=2)
    array.install(0)
    assert array.victim_for(64) is None


def test_victim_is_lru():
    array = make_array(sets=1, assoc=2)
    array.install(0)
    array.install(64)
    array.lookup(0)                      # touch 0: now 64 is LRU
    victim = array.victim_for(128)
    assert victim.line == 64


def test_pinned_lines_never_victims():
    array = make_array(sets=1, assoc=2)
    a = array.install(0)
    b = array.install(64)
    a.pin()
    victim = array.victim_for(128)
    assert victim is b


def test_all_pinned_raises():
    array = make_array(sets=1, assoc=2)
    array.install(0).pin()
    array.install(64).pin()
    with pytest.raises(RuntimeError):
        array.victim_for(128)


def test_evict_pinned_rejected():
    array = make_array()
    entry = array.install(0x100)
    entry.pin()
    with pytest.raises(RuntimeError):
        array.evict(0x100)


def test_unpin_underflow():
    array = make_array()
    entry = array.install(0x100)
    with pytest.raises(RuntimeError):
        entry.unpin()


def test_word_state_mask_roundtrip():
    array = make_array()
    entry = array.install(0x100)
    entry.set_words(0b1010, St.O)
    assert entry.words_in(St.O) == 0b1010
    assert entry.words_in(St.I) == FULL_LINE_MASK & ~0b1010


def test_data_read_write_masked():
    array = make_array()
    entry = array.install(0x100)
    entry.write_data(0b11, {0: 7, 1: 9})
    assert entry.read_data(0b11) == {0: 7, 1: 9}
    # write only touches masked words with provided values
    entry.write_data(0b100, {0: 99})
    assert entry.data[0] == 7


def test_sets_are_indexed_by_line():
    array = make_array(sets=4, assoc=2)
    # lines mapping to the same set: stride = sets * line size
    for i in range(2):
        array.install(0x1000 + i * 4 * 64)
    assert array.victim_for(0x1000 + 2 * 4 * 64) is not None
    # a different set still has room
    assert array.victim_for(0x1040) is None


def test_resident_count_and_iteration():
    array = make_array()
    for line in (0, 64, 128):
        array.install(line)
    assert array.resident_count() == 3
    assert sorted(l.line for l in array.lines()) == [0, 64, 128]


def test_size_validation():
    with pytest.raises(ValueError):
        CacheArray(1000, 3, St.I)
