"""Liveness-watchdog tests: a synthetic deadlock (a test-only TU that
drops a response on the floor) must be detected by both detectors —
the quiescence check when the event queue drains, and the periodic
stall check while other traffic keeps the queue busy — each raising
``DeadlockError`` with a structured diagnostic dump.
"""

import pytest

from repro.coherence.messages import MsgKind
from repro.faults import (DeadlockError, LivenessWatchdog,
                          format_diagnostic, system_busy)
from repro.sim.engine import Engine, SimulationError
from tests.harness import MiniSpandex


class SystemView:
    """Adapts MiniSpandex to the watchdog's duck-typed system shape."""

    def __init__(self, mini):
        self.engine = mini.engine
        self.network = mini.network
        self.cpu_l1s = list(mini.l1s.values())
        self.gpu_l1s = []
        self.llc = mini.llc
        self.gpu_l2 = None
        self.cpus = []
        self.gpus = []


def drop_first_response(mini, device):
    """Make the device's TU silently swallow its first data response."""
    tu = mini.tus[device]
    original = tu._handle
    dropped = []

    def evil_handle(msg):
        if msg.kind != MsgKind.NACK and not dropped:
            dropped.append(msg)
            return                       # the deadlock: response lost
        original(msg)

    tu._handle = evil_handle
    return dropped


# -- quiescence detector ------------------------------------------------------
def test_dropped_response_deadlock_detected_at_quiescence():
    mini = MiniSpandex({"dev0": "DeNovo"})
    mini.seed(0x1000, {0: 42})
    dropped = drop_first_response(mini, "dev0")
    watchdog = LivenessWatchdog(SystemView(mini), stall_cycles=10_000)
    mini.engine.stall_check = watchdog.quiescence_check

    completion = mini.load("dev0", 0x1000, 0x1)
    with pytest.raises(DeadlockError) as excinfo:
        mini.run()
    assert dropped, "the evil TU never saw the response"
    assert not completion.done
    assert "not quiescent" in str(excinfo.value)
    diag = excinfo.value.diagnostic
    assert diag["devices"]
    dump = format_diagnostic(diag)
    assert "dev0" in dump


def test_clean_run_passes_quiescence_check():
    mini = MiniSpandex({"dev0": "DeNovo"})
    mini.seed(0x1000, {0: 42})
    watchdog = LivenessWatchdog(SystemView(mini), stall_cycles=10_000)
    mini.engine.stall_check = watchdog.quiescence_check
    completion = mini.load("dev0", 0x1000, 0x1)
    mini.run()
    assert completion.done and completion.values[0] == 42
    assert not system_busy(SystemView(mini))


# -- periodic stall detector --------------------------------------------------
def test_stalled_request_detected_while_queue_stays_busy():
    mini = MiniSpandex({"dev0": "DeNovo", "dev1": "DeNovo"})
    mini.seed(0x1000, {0: 7})
    drop_first_response(mini, "dev0")
    view = SystemView(mini)
    watchdog = LivenessWatchdog(view, stall_cycles=200, period=50)
    watchdog.arm()

    # unrelated traffic keeps the event queue alive past the bound
    def chatter(remaining=80):
        if remaining:
            mini.load("dev1", 0x2000 + (remaining % 4) * 64, 0x1)
            mini.engine.schedule(20, lambda: chatter(remaining - 1),
                                 label="chatter")

    chatter()
    mini.load("dev0", 0x1000, 0x1)
    with pytest.raises(DeadlockError) as excinfo:
        mini.run()
    assert "liveness watchdog" in str(excinfo.value)
    stalled = excinfo.value.diagnostic["stalled"]
    assert any(entry["device"] == "dev0" and entry["kind"] == "request"
               for entry in stalled)
    assert watchdog.checks > 1


def test_watchdog_tick_does_not_stretch_quiescent_run():
    mini = MiniSpandex({"dev0": "DeNovo"})
    mini.seed(0x1000, {0: 1})
    watchdog = LivenessWatchdog(SystemView(mini), stall_cycles=100_000)
    watchdog.arm()
    mini.load("dev0", 0x1000, 0x1)
    end = mini.run()
    # the pending 25k-cycle watchdog tick is idle housekeeping: it must
    # be dropped, not executed at its scheduled time
    assert end < 1_000


# -- engine safety limits -----------------------------------------------------
def make_self_feeding_engine(step=1):
    engine = Engine()

    def tick():
        engine.schedule(step, tick, label="tick")

    engine.schedule(step, tick, label="tick")
    return engine


def test_max_events_budget_raises():
    engine = make_self_feeding_engine()
    with pytest.raises(SimulationError, match="event budget"):
        engine.run(max_events=100)
    assert engine.events_executed == 100


def test_max_cycles_budget_raises():
    engine = make_self_feeding_engine(step=10)
    with pytest.raises(SimulationError, match="cycle budget"):
        engine.run(max_cycles=500)
    assert engine.now <= 500


def test_idle_events_dropped_when_only_housekeeping_remains():
    engine = Engine()
    ran = []
    engine.schedule(10, lambda: ran.append("real"), label="real")
    engine.schedule(100, lambda: ran.append("idle"), label="idle",
                    idle=True)
    assert engine.run() == 10
    assert ran == ["real"]


def test_idle_events_run_while_real_work_remains():
    engine = Engine()
    ran = []
    engine.schedule(5, lambda: ran.append("idle"), label="idle",
                    idle=True)
    engine.schedule(10, lambda: ran.append("real"), label="real")
    engine.run()
    assert ran == ["idle", "real"]
