"""Unit tests for system configuration, builder and analysis layers."""

import pytest

from repro.analysis import (ConfigResult, ExperimentRunner,
                            TRAFFIC_CLASSES, WorkloadResult,
                            format_figure, format_traffic_stack,
                            summarize_headline)
from repro.system import (CONFIG_ORDER, CONFIGS, HIERARCHICAL_CONFIGS,
                          SPANDEX_CONFIGS, build_system, scaled_config)
from repro.workloads import make_reuse_o


# -- config --------------------------------------------------------------------
def test_config_partition():
    assert set(CONFIG_ORDER) == set(HIERARCHICAL_CONFIGS) | \
        set(SPANDEX_CONFIGS)
    assert not set(HIERARCHICAL_CONFIGS) & set(SPANDEX_CONFIGS)


def test_scaled_config_keeps_protocol_choices():
    config = scaled_config("SDG", 2, 4)
    assert config.num_cpus == 2 and config.num_gpus == 4
    assert config.cpu_protocol == "DeNovo"
    assert config.cpu_atomic_policy == "llc"
    assert config.llc_size == CONFIGS["SDG"].llc_size


def test_config_describe():
    text = CONFIGS["HMG"].describe()
    assert "H-MESI" in text and "GPU coherence" in text


def test_configs_are_frozen():
    with pytest.raises(Exception):
        CONFIGS["HMG"].num_cpus = 3


# -- builder -------------------------------------------------------------------
def test_spandex_system_shape():
    system = build_system(scaled_config("SMD", 2, 3))
    assert len(system.cpus) == 2 and len(system.gpus) == 3
    assert system.gpu_l2 is None
    assert system.llc.__class__.__name__ == "SpandexLLC"
    # every device registered its protocol family with the LLC
    assert len(system.llc.device_protocols) == 5
    assert system.llc.device_protocols["cpu0.l1"] == "MESI"
    assert system.llc.device_protocols["gpu0.l1"] == "DeNovo"


def test_hierarchical_system_shape():
    system = build_system(scaled_config("HMD", 2, 2))
    assert system.gpu_l2 is not None
    assert system.llc.__class__.__name__ == "MESIDirectoryLLC"
    assert system.gpu_l2.device_protocols["gpu1.l1"] == "DeNovo"


def test_sdg_cpu_atomics_at_llc():
    system = build_system(scaled_config("SDG", 1, 1))
    assert system.cpu_l1s[0].atomic_policy == "llc"
    system2 = build_system(scaled_config("SDD", 1, 1))
    assert system2.cpu_l1s[0].atomic_policy == "own"


def test_initial_memory_is_loaded():
    from repro.workloads import Workload
    from repro.workloads.trace import Op
    workload = Workload("t", [[Op.load(0x2000)]], [[]],
                        initial_memory={0x2000: 123})
    system = build_system(scaled_config("SDD", 1, 1))
    system.load_workload(workload)
    assert system.dram.peek(0x2000)[0] == 123
    system.run()
    assert system.read_coherent(0x2000) == 123


# -- analysis ------------------------------------------------------------------
def fake_result(name, cycles_by_config, bytes_by_config=None):
    results = {}
    for config, cycles in cycles_by_config.items():
        nbytes = (bytes_by_config or cycles_by_config)[config] * 100.0
        results[config] = ConfigResult(
            config=config, cycles=cycles, network_bytes=nbytes,
            traffic={cls: nbytes / len(TRAFFIC_CLASSES)
                     for cls in TRAFFIC_CLASSES})
    return WorkloadResult(name, results)


def test_normalization():
    wr = fake_result("w", {"HMG": 100, "HMD": 110, "SMG": 80,
                           "SMD": 70, "SDG": 90, "SDD": 60})
    time = wr.normalized_time()
    assert time["HMG"] == 1.0
    assert time["SDD"] == pytest.approx(0.6)


def test_hbest_sbest_selection():
    wr = fake_result("w", {"HMG": 100, "HMD": 95, "SMG": 80,
                           "SMD": 70, "SDG": 90, "SDD": 72})
    assert wr.hbest() == "HMD"
    assert wr.sbest() == "SMD"
    reductions = wr.sbest_vs_hbest()
    assert reductions["time_reduction"] == pytest.approx(1 - 70 / 95)


def test_summarize_headline():
    a = fake_result("a", {"HMG": 100, "HMD": 100, "SMG": 80,
                          "SMD": 80, "SDG": 80, "SDD": 80})
    b = fake_result("b", {"HMG": 100, "HMD": 100, "SMG": 60,
                          "SMD": 60, "SDG": 60, "SDD": 60})
    summary = summarize_headline([a, b])
    assert summary["avg_time_reduction"] == pytest.approx(0.3)
    assert summary["max_time_reduction"] == pytest.approx(0.4)


def test_format_figure_renders_all_rows():
    wr = fake_result("w", {c: 100 for c in CONFIG_ORDER})
    text = format_figure([wr], "title")
    assert "title" in text and "w" in text
    for config in CONFIG_ORDER:
        assert config in text


def test_format_traffic_stack_covers_classes():
    wr = fake_result("w", {c: 100 for c in CONFIG_ORDER})
    text = format_traffic_stack(wr)
    for cls in TRAFFIC_CLASSES:
        assert cls in text


def test_format_figure_empty_results_is_a_message():
    text = format_figure([], "Figure 2")
    assert "no results" in text


def test_format_figure_zero_cycle_base_does_not_crash():
    wr = fake_result("w", {c: 0 for c in CONFIG_ORDER})
    text = format_figure([wr], "title")
    assert "no HMG baseline" in text
    assert "not computable" in text


def test_format_figure_missing_base_config():
    wr = fake_result("w", {"SDD": 100, "SMD": 90})
    text = format_figure([wr], "title")
    assert "no HMG baseline" in text and "not run" in text


def test_format_figure_mixed_good_and_degenerate_rows():
    good = fake_result("good", {c: 100 for c in CONFIG_ORDER})
    degenerate = fake_result("bad", {c: 0 for c in CONFIG_ORDER})
    text = format_figure([good, degenerate], "title")
    assert "good" in text and "no HMG baseline" in text
    assert "Sbest vs Hbest: execution time" in text


def test_format_traffic_stack_zero_base_is_a_message():
    wr = fake_result("w", {c: 0 for c in CONFIG_ORDER})
    text = format_traffic_stack(wr)
    assert "zero bytes" in text


def test_format_traffic_stack_missing_base_is_a_message():
    wr = fake_result("w", {"SDD": 100})
    text = format_traffic_stack(wr)
    assert "was not run" in text


def test_summarize_headline_empty_is_zero():
    summary = summarize_headline([])
    assert summary["avg_time_reduction"] == 0.0
    assert summary["max_traffic_reduction"] == 0.0


def test_experiment_runner_end_to_end_small():
    runner = ExperimentRunner(num_cpus=1, num_gpus=1, warps_per_cu=1,
                              configs=("SDD",))
    result = runner.run("ReuseO", make_reuse_o, tile_lines=2,
                        iterations=2, sparse_reads=1)
    config_result = result.results["SDD"]
    assert config_result.cycles > 0
    assert config_result.memory_ok is True
    assert sum(config_result.traffic.values()) == pytest.approx(
        config_result.network_bytes)
