"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Component, Engine, SimulationError


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(10, lambda: order.append("b"))
    engine.schedule(5, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in "abcde":
        engine.schedule(7, lambda t=tag: order.append(t))
    engine.run()
    assert order == list("abcde")


def test_now_advances_with_events():
    engine = Engine()
    seen = []
    engine.schedule(3, lambda: seen.append(engine.now))
    engine.schedule(9, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [3, 9]
    assert engine.now == 9


def test_nested_scheduling():
    engine = Engine()
    seen = []

    def outer():
        seen.append(engine.now)
        engine.schedule(4, lambda: seen.append(engine.now))

    engine.schedule(2, outer)
    engine.run()
    assert seen == [2, 6]


def test_zero_delay_runs_same_cycle():
    engine = Engine()
    seen = []
    engine.schedule(5, lambda: engine.schedule(
        0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [5]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_cancelled_event_skipped():
    engine = Engine()
    seen = []
    event = engine.schedule(5, lambda: seen.append("cancelled"))
    engine.schedule(6, lambda: seen.append("kept"))
    event.cancel()
    engine.run()
    assert seen == ["kept"]


def test_run_until_pauses_and_resumes():
    engine = Engine()
    seen = []
    engine.schedule(5, lambda: seen.append(5))
    engine.schedule(15, lambda: seen.append(15))
    engine.run(until=10)
    assert seen == [5]
    assert engine.now == 10
    engine.run()
    assert seen == [5, 15]


def test_run_until_advances_now_when_queue_drains_early():
    # Regression: Engine.run(until=...) used to leave `now` at the last
    # event time when the heap drained before `until`, so a resumed run
    # would schedule "future" work in the quiescent gap's past.
    engine = Engine()
    seen = []
    engine.schedule(3, lambda: seen.append(engine.now))
    assert engine.run(until=100) == 100
    assert seen == [3]
    assert engine.now == 100


def test_run_until_resume_after_quiescence():
    engine = Engine()
    seen = []
    engine.schedule(3, lambda: seen.append(engine.now))
    engine.run(until=100)
    # new work scheduled after quiescence is relative to `until`
    engine.schedule(5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [3, 105]
    assert engine.now == 105


def test_run_until_on_empty_queue_advances():
    engine = Engine()
    assert engine.run(until=42) == 42
    assert engine.now == 42


def test_run_without_until_stays_at_last_event():
    engine = Engine()
    engine.schedule(7, lambda: None)
    engine.run()
    assert engine.now == 7


def test_max_events_watchdog():
    engine = Engine()

    def rearm():
        engine.schedule(1, rearm)

    engine.schedule(1, rearm)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_pending_counts_live_events():
    engine = Engine()
    kept = engine.schedule(5, lambda: None)
    cancelled = engine.schedule(6, lambda: None)
    cancelled.cancel()
    assert engine.pending() == 1
    engine.run()
    assert engine.pending() == 0


def test_drain_check_raises_when_events_remain():
    engine = Engine()
    engine.schedule(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.drain_check()


def test_component_schedule_uses_engine():
    engine = Engine()
    component = Component(engine, "widget")
    seen = []
    component.schedule(4, lambda: seen.append(component.now))
    engine.run()
    assert seen == [4]


def test_events_executed_counter():
    engine = Engine()
    for _ in range(7):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_executed == 7


def test_run_not_reentrant():
    engine = Engine()
    failures = []

    def reenter():
        try:
            engine.run()
        except SimulationError:
            failures.append(True)

    engine.schedule(1, reenter)
    engine.run()
    assert failures == [True]
