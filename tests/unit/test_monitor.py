"""MetricsRegistry instruments, name grammar, and HealthMonitor
sampling behaviour."""

import json

import pytest

from repro.obs import (Counter, Gauge, HealthMonitor, Histogram,
                       MetricsRegistry, TraceEvent, format_health)
from repro.sim.stats import MetricNameError
from repro.system import (TraceConfig, WatchdogConfig, build_system,
                          scaled_config)
from repro.workloads import MICROBENCHMARKS


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_instrument_kinds_and_values():
    registry = MetricsRegistry()
    counter = registry.counter("a.count", help="things", unit="things")
    assert isinstance(counter, Counter)
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("a.level")
    assert isinstance(gauge, Gauge)
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3 and gauge.high_water == 7

    histogram = registry.histogram("a.dist")
    assert isinstance(histogram, Histogram)
    for value in (1, 5, 5, 300):
        histogram.observe(value)
    assert histogram.count == 4 and histogram.sum == 311


def test_registration_is_idempotent_per_name_and_labels():
    registry = MetricsRegistry()
    first = registry.counter("x.y", labels={"shard": "llc0"})
    again = registry.counter("x.y", labels={"shard": "llc0"})
    assert first is again
    other = registry.counter("x.y", labels={"shard": "llc1"})
    assert other is not first
    assert len(registry.instruments()) == 2


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("x.y")
    with pytest.raises(MetricNameError):
        registry.gauge("x.y")
    # also across label sets: one name stays one kind
    with pytest.raises(MetricNameError):
        registry.gauge("x.y", labels={"shard": "llc0"})


def test_name_grammar_enforced():
    registry = MetricsRegistry()
    for bad in ("Upper.case", "1starts.with.digit", "trailing.",
                "sp ace", "dash-es.allowed", ""):
        with pytest.raises(MetricNameError):
            registry.counter(bad)
    with pytest.raises(MetricNameError):
        registry.gauge("ok.name", labels={"BadLabel": "v"})


def test_alias_table_and_collision():
    registry = MetricsRegistry()
    registry.alias("llc", "home.<shard>")
    registry.alias("llc", "home.<shard>")     # same mapping: fine
    with pytest.raises(MetricNameError):
        registry.alias("llc", "somewhere.else")
    assert registry.snapshot()["aliases"] == {"llc": "home.<shard>"}


def test_gauge_callback_polled_at_collect():
    registry = MetricsRegistry()
    level = {"value": 0}
    registry.gauge("cb.level", fn=lambda: level["value"])
    level["value"] = 42
    (sample,) = registry.collect()
    assert sample["value"] == 42 and sample["high_water"] == 42


def test_scope_prefixes_names():
    registry = MetricsRegistry()
    scope = registry.scope("engine").scope("queue")
    counter = scope.counter("drops")
    assert counter.name == "engine.queue.drops"


def test_snapshot_json_round_trip_exact():
    registry = MetricsRegistry()
    registry.counter("a.b", labels={"k": "v"}).inc(3)
    registry.gauge("a.g").set(1.5)
    registry.histogram("a.h").observe(9)
    registry.alias("old", "a.b")
    snapshot = registry.snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot


# ---------------------------------------------------------------------------
# health monitor
# ---------------------------------------------------------------------------
def _monitored_system(**overrides):
    config = scaled_config(
        "SDD", 2, 2, watchdog=WatchdogConfig(stall_cycles=200_000),
        trace=TraceConfig(monitor_interval=1000), **overrides)
    system = build_system(config)
    workload = MICROBENCHMARKS["ReuseS"](num_cpus=2, num_gpus=2,
                                         warps_per_cu=1)
    system.load_workload(workload)
    return system


def test_monitor_samples_on_interval_boundaries():
    system = _monitored_system()
    system.run(max_events=30_000_000)
    monitor = system.monitor
    assert monitor.scrapes == len(monitor.samples)
    assert monitor.scrapes > 1
    stamps = [row["ts"] for row in monitor.samples]
    assert stamps == sorted(stamps)
    # one scrape per interval window at most
    assert len({ts // 1000 for ts in stamps[:-1]}) == len(stamps) - 1


def test_monitor_rows_cover_every_surface():
    system = _monitored_system(llc_shards=2)
    system.run(max_events=30_000_000)
    row = system.monitor.samples[-1]
    home_names = {home.name for home in system.llcs}
    if system.gpu_l2 is not None:
        home_names.add(system.gpu_l2.name)
    assert set(row["homes"]) == home_names
    assert len(system.llcs) == 2
    l1_names = {l1.name for l1 in system.cpu_l1s + system.gpu_l1s}
    assert set(row["mshr"]) == l1_names and len(l1_names) == 4
    assert row["engine"]["events"] == system.engine.events_executed
    for entry in row["mshr"].values():
        assert entry["capacity"] >= entry["high_water"] >= 1


def test_mshr_high_water_tracks_peak_occupancy():
    system = _monitored_system()
    system.run(max_events=30_000_000)
    for l1 in system.cpu_l1s + system.gpu_l1s:
        assert l1.mshrs.high_water >= 1
        assert l1.mshrs.high_water <= l1.mshrs.capacity
        assert len(l1.mshrs) == 0      # drained at quiescence


def test_finalize_is_idempotent():
    system = _monitored_system()
    system.run(max_events=30_000_000)
    scrapes = system.monitor.scrapes
    system.monitor.finalize(system.engine.now)
    assert system.monitor.scrapes == scrapes


def test_on_sample_callbacks_fire_per_scrape():
    system = _monitored_system()
    rows = []
    system.monitor.on_sample.append(rows.append)
    system.run(max_events=30_000_000)
    assert len(rows) == system.monitor.scrapes


def test_monitor_gauge_high_water_is_whole_run_peak():
    system = _monitored_system()
    system.run(max_events=30_000_000)
    peak = max(inst.high_water
               for inst in system.registry.instruments()
               if inst.kind == "gauge" and inst.name == "mshr.high_water")
    direct = max(l1.mshrs.high_water
                 for l1 in system.cpu_l1s + system.gpu_l1s)
    assert peak == direct


def test_health_summary_and_format():
    system = _monitored_system()
    system.run(max_events=30_000_000)
    summary = system.monitor.health_summary()
    assert summary["scrapes"] == system.monitor.scrapes
    assert summary["peaks"]
    assert "critical_path" in summary
    assert json.loads(json.dumps(summary)) == summary
    text = format_health(system.monitor)
    assert "== health @ cycle" in text
    assert "engine:" in text


def test_monitor_ignores_events_before_interval():
    registry = MetricsRegistry()

    class _Engine:
        events_executed = 10
        def pending(self):
            return 0
        def pending_non_idle(self):
            return 0

    class _Network:
        _in_flight = {}
        _links = {}

    class _System:
        engine = _Engine()
        network = _Network()
        llcs = ()
        gpu_l2 = None
        cpu_l1s = ()
        gpu_l1s = ()
        spans = None

    monitor = HealthMonitor(_System(), registry, interval=100)
    monitor(TraceEvent(5, "net.send", "a"))
    assert monitor.scrapes == 0
    monitor(TraceEvent(100, "net.send", "a"))
    assert monitor.scrapes == 1
    monitor(TraceEvent(150, "net.send", "a"))
    assert monitor.scrapes == 1
    monitor(TraceEvent(205, "net.send", "a"))
    assert monitor.scrapes == 2
    monitor.finalize(300)
    assert monitor.scrapes == 3
