"""Capacity and eviction-path tests across all cache levels.

Evictions exercise protocol paths that the steady-state tests don't:
inclusive-LLC sharer invalidation before victimization, GPU L2 PutM
releases, directory recalls, and owned-line pinning under pressure.
"""

import pytest

from repro.coherence.messages import MsgKind, atomic_add
from repro.core.home import HomeState

from tests.systems import MiniHier, MiniSpandex


def spread_lines(count, set_stride):
    """Lines that all map to the same set for a cache with
    ``set_stride`` bytes between same-set lines."""
    return [0x40000 + i * set_stride for i in range(count)]


def test_llc_eviction_invalidates_sharers_first():
    # a tiny LLC forces S-line evictions; the sharers must be
    # invalidated before the line may leave (MESI correctness)
    mini = MiniSpandex({"a": "MESI", "b": "MESI"}, llc_size=2 * 1024,
                       coalesce_delay=1)
    target = 0x40000
    # create an S line: a owns it, b reads it
    mini.store("a", target, 0b1, {0: 7})
    mini.release("a")
    mini.run()
    mini.load("b", target, 0b1)
    mini.run()
    assert mini.llc_line(target).state == HomeState.S
    # hammer the same LLC set until the S line is evicted
    stride = 2 * 1024      # sets * 64 for this size/assoc
    before_inv = mini.stats.get("llc.invalidations_sent")
    for i in range(1, 40):
        line = target + i * stride
        mini.store("a", line, 0b1, {0: i})
        mini.release("a")
        mini.run()
        # immediately drop ownership so these lines are evictable
        l1 = mini.l1s["a"]
        resident = l1.array.lookup(line, touch=False)
        if resident is not None:
            l1._evict(resident)
        mini.run()
    assert mini.llc_line(target) is None      # evicted
    assert mini.stats.get("llc.invalidations_sent") > before_inv
    # and the sharer's copy went with it
    b_line = mini.l1s["b"].array.lookup(target, touch=False)
    assert b_line is None
    # value survived to DRAM
    assert mini.dram.peek(target)[0] == 7


def test_owned_lines_pin_against_llc_eviction():
    mini = MiniSpandex({"dn": "DeNovo"}, llc_size=2 * 1024,
                       coalesce_delay=1)
    target = 0x40000
    mini.store("dn", target, 0b1, {0: 42})
    mini.release("dn")
    mini.run()
    # stride chosen to alias in the tiny LLC (2 sets) but spread across
    # the larger L1's sets, so the L1 keeps its owned word resident
    stride = 128
    for i in range(1, 40):
        mini.load("dn", target + i * stride, 0b1)
        mini.run()
    assert mini.stats.get("llc.evictions") > 0
    # the owned line never left the LLC (inclusivity)
    assert mini.llc_line(target) is not None
    assert mini.llc_owner(target, 0) == "dn"


def test_gpu_l2_capacity_eviction_putm():
    mini = MiniHier(cpus=1, gpus=1)
    # shrink the L2 array to force evictions
    from repro.mem.cache import CacheArray
    from repro.core.home import HomeState as HS
    mini.gpu_l2.array = CacheArray(2 * 1024, 16, HS.I)
    lines = [0x50000 + i * 2 * 1024 for i in range(40)]
    for i, line in enumerate(lines):
        mini.access("gpu0", "store", line, 0b1, values={0: i + 1})
        mini.release("gpu0")
        mini.run()
    assert mini.stats.get("l2.putm") > 0
    # every written value is recoverable through the directory
    for i, line in enumerate(lines):
        load = mini.access("cpu0", "load", line, 0b1)
        mini.run()
        assert load.values[0] == i + 1


def test_l1_capacity_evictions_write_back_denovo():
    mini = MiniSpandex({"dn": "DeNovo"}, l1_size=1024,
                       coalesce_delay=1)
    # 1KB 8-way: 2 sets; stride same-set lines
    lines = [0x60000 + i * 2 * 64 for i in range(20)]
    for i, line in enumerate(lines):
        mini.store("dn", line, 0b1, {0: 100 + i})
        mini.release("dn")
        mini.run()
    assert mini.stats.get("l1.owned_evictions") > 0
    # all values are coherently visible at the LLC or the L1
    for i, line in enumerate(lines):
        owner = mini.llc_owner(line, 0)
        if owner is None:
            assert mini.llc_word(line, 0) == 100 + i
        else:
            resident = mini.l1s["dn"].array.lookup(line, touch=False)
            assert resident.data[0] == 100 + i


def test_l1_capacity_evictions_mesi_full_line():
    mini = MiniSpandex({"cpu": "MESI"}, l1_size=1024, coalesce_delay=1)
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    lines = [0x70000 + i * 2 * 64 for i in range(20)]
    for i, line in enumerate(lines):
        mini.store("cpu", line, 0b1, {0: i})
        mini.release("cpu")
        mini.run()
    writebacks = [m for m in traffic if m.kind == MsgKind.REQ_WB]
    assert writebacks
    assert all(m.mask == 0xFFFF for m in writebacks)


def test_directory_eviction_with_sharers():
    mini = MiniHier(cpus=2, gpus=0)
    from repro.mem.cache import CacheArray
    from repro.protocols.mesi_llc import DirState
    mini.l3.array = CacheArray(2 * 1024, 16, DirState.I)
    target = 0x80000
    mini.dram.poke(target, {0: 5})
    mini.access("cpu0", "load", target, 0b1)
    mini.run()
    mini.access("cpu1", "load", target, 0b1)
    mini.run()
    # push the shared line out with other traffic
    for i in range(1, 40):
        mini.access("cpu0", "load", target + i * 2 * 1024, 0b1)
        mini.run()
    assert mini.l3.array.lookup(target, touch=False) is None
    # sharers were invalidated on the way out
    for name in ("cpu0", "cpu1"):
        resident = mini.l1s[name].array.lookup(target, touch=False)
        assert resident is None
    # and a re-read still works
    load = mini.access("cpu1", "load", target, 0b1)
    mini.run()
    assert load.values[0] == 5


def test_gpu_coherence_eviction_is_silent():
    # write-through caches never write back on eviction
    mini = MiniSpandex({"gpu": "GPU"}, l1_size=1024, coalesce_delay=1)
    traffic = []
    lines = [0x90000 + i * 2 * 64 for i in range(20)]
    for line in lines:
        mini.load("gpu", line, 0b1)
        mini.run()
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.load("gpu", lines[0], 0b1)     # may evict, but silently
    mini.run()
    assert not any(m.kind == MsgKind.REQ_WB for m in traffic)
