"""Corner-case protocol tests: mixed-owner ReqS, TU epoch splits,
GPU L2 upstream invalidation races, and forwarded-request edge paths.
"""

from repro.coherence.messages import Message, MsgKind, atomic_add
from repro.core.home import HomeState
from repro.protocols.denovo import DnState
from repro.protocols.mesi import MesiState

from tests.systems import MiniHier, MiniSpandex

LINE = 0x11000


def test_reqs_option1_with_denovo_co_owner():
    """A MESI read of a line with words owned by a MESI core *and* a
    DeNovo core: option (1) is chosen (MESI owner present); the DeNovo
    owner must also answer the forwarded ReqS — keeping a Valid copy —
    and all words end up Shared at the LLC."""
    mini = MiniSpandex({"m1": "MESI", "m2": "MESI", "dn": "DeNovo"},
                       coalesce_delay=1)
    # dn owns word 0; m1 owns the rest of the line
    mini.store("dn", LINE, 0b1, {0: 500})
    mini.release("dn")
    mini.run()
    mini.store("m1", LINE, 0b10, {1: 501})
    mini.release("m1")
    mini.run()
    assert mini.llc_owner(LINE, 0) == "m1" or \
        mini.llc_owner(LINE, 0) == "dn"
    # m2 reads the full line
    load = mini.load("m2", LINE, 0b11)
    mini.run()
    assert load.done
    assert load.values[0] == 500 and load.values[1] == 501
    resident = mini.llc_line(LINE)
    assert all(owner is None for owner in resident.owner)
    assert resident.state == HomeState.S
    m2_line = mini.l1s["m2"].array.lookup(LINE, touch=False)
    assert m2_line.state == MesiState.S


def test_denovo_keeps_valid_copy_after_fwd_reqs():
    mini = MiniSpandex({"m1": "MESI", "m2": "MESI", "dn": "DeNovo"},
                       coalesce_delay=1)
    mini.store("dn", LINE, 0b1, {0: 7})
    mini.release("dn")
    mini.run()
    mini.store("m1", LINE, 0b10, {1: 8})
    mini.release("m1")
    mini.run()
    mini.load("m2", LINE, 0b11)
    mini.run()
    dn_line = mini.l1s["dn"].array.lookup(LINE, touch=False)
    if dn_line is not None:
        # the DeNovo owner downgraded O -> V (safe under DRF)
        assert dn_line.word_states[0] in (DnState.V, DnState.I)
        if dn_line.word_states[0] == DnState.V:
            assert dn_line.data[0] == 7


def test_mesi_tu_epoch_split_wb_and_fresh_grant():
    """A forward covering words from two ownership epochs at one MESI
    device: some covered by a pending TU write-back (old epoch), some
    newly granted.  The TU must split the message and both parts must
    complete coherently."""
    mini = MiniSpandex({"mesi": "MESI", "gpu": "GPU", "dn": "DeNovo"},
                       coalesce_delay=1)
    mini.seed(LINE, {i: 10 + i for i in range(16)})
    # epoch 1: MESI owns the line
    mini.store("mesi", LINE, 0b1, {0: 100})
    mini.release("mesi")
    mini.run()
    # GPU writes through word 3 -> MESI TU downgrades and write-backs
    # the other 15 words; immediately after, the MESI cache re-acquires
    # the line (new epoch) — exercising WB + IM coexistence at the TU
    mini.store("gpu", LINE, 0b1000, {3: 999})
    mini.release("gpu")
    mini.store("mesi", LINE, 0b10, {1: 200})
    release = mini.release("mesi")
    mini.run()
    assert release.done
    # final state: coherent values everywhere
    resident = mini.llc_line(LINE)
    values = {}
    for index in (0, 1, 3):
        owner = resident.owner[index]
        if owner is None:
            values[index] = resident.data[index]
        else:
            values[index] = mini.l1s[owner].array.lookup(
                LINE, touch=False).data[index]
    assert values[0] == 100
    assert values[1] == 200
    assert values[3] in (999, 13)  # 999 unless epoch-2 RFO won the race
    # ... but a reader must observe a single consistent outcome
    load = mini.load("dn", LINE, 0b1010, invalidate_first=True)
    mini.run()
    assert load.done


def test_gpu_l2_inv_while_upgrade_queued():
    """MESIInv arriving at the GPU L2 while its own GetM is queued at
    the directory (the SM race): the atomic that triggered the upgrade
    must still apply exactly once to fresh data."""
    mini = MiniHier(cpus=1, gpus=1)
    target = 0x12000
    # L2 becomes an S-state sharer
    load = mini.access("gpu0", "load", target, 0b1)
    mini.run()
    # CPU takes M (invalidating the L2) at the same time as a GPU
    # atomic forces the L2 to upgrade
    mini.access("cpu0", "rmw", target, 0b1, atomic=atomic_add(10))
    rmw = mini.access("gpu0", "rmw", target, 0b1, atomic=atomic_add(1))
    mini.run()
    assert rmw.done
    # total = 11 regardless of interleaving
    dir_line = mini.l3.array.lookup(target, touch=False)
    owner = dir_line.meta.get("owner")
    if owner == "gpu_l2":
        value = mini.gpu_l2.array.lookup(target, touch=False).data[0]
    elif owner:
        value = mini.l1s[owner].array.lookup(target, touch=False).data[0]
    else:
        value = dir_line.data[0]
    assert value == 11
    assert sorted([0, 1, 10, 11]).index(rmw.values[0]) >= 0


def test_forwarded_reqv_to_mesi_owner_is_snapshot():
    """ReqV forwarded to a MESI owner returns data without downgrading
    — a later write by the owner stays coherent."""
    mini = MiniSpandex({"mesi": "MESI", "dn": "DeNovo"},
                       coalesce_delay=1)
    mini.store("mesi", LINE, 0b1, {0: 1})
    mini.release("mesi")
    mini.run()
    load = mini.load("dn", LINE, 0b1)
    mini.run()
    assert load.values[0] == 1
    # owner still has M and can write locally without traffic
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    store = mini.store("mesi", LINE, 0b1, {0: 2})
    mini.run()
    assert not traffic       # silent M-hit
    assert mini.l1s["mesi"].array.lookup(LINE, touch=False).data[0] == 2


def test_inv_to_device_without_copy_is_acked():
    """§III-C case 3: Inv for data in a stable state other than S."""
    mini = MiniSpandex({"gpu": "GPU", "dn": "DeNovo"})
    acks = []
    mini.network.trace_hook = (
        lambda m, t: acks.append(m) if m.kind == MsgKind.ACK else None)
    for name in ("gpu", "dn"):
        mini.network.send(Message(MsgKind.INV, LINE, 0xFFFF,
                                  src="llc", dst=name, req_id=999999))
    # register a matching transaction so the Acks have a home
    from repro.core.home import HomeTxn
    txn = HomeTxn(LINE, 0xFFFF, "test-inv", lambda t: None)
    txn.txn_id = 999999
    txn.acks_needed = 2
    mini.llc._txns[999999] = txn
    mini.run()
    assert len(acks) == 2
    assert 999999 not in mini.llc._txns      # both Acks collected


def test_multiword_denovo_store_across_owned_and_free_words():
    """One coalesced ReqO touching words owned by another device and
    free words: partial grants from both sources complete it."""
    mini = MiniSpandex({"a": "DeNovo", "b": "DeNovo"}, coalesce_delay=4)
    mini.store("a", LINE, 0b0001, {0: 1})
    mini.release("a")
    mini.run()
    # b writes words 0 (owned by a) and 5 (free) in one buffered burst
    mini.store("b", LINE, 0b0001, {0: 2})
    mini.store("b", LINE, 0b100000, {5: 3})
    release = mini.release("b")
    mini.run()
    assert release.done
    assert mini.llc_owner(LINE, 0) == "b"
    assert mini.llc_owner(LINE, 5) == "b"
    b_line = mini.l1s["b"].array.lookup(LINE, touch=False)
    assert b_line.data[0] == 2 and b_line.data[5] == 3
