"""Targeted race-condition tests (paper §III-C).

The Spandex-specific races: requests arriving during pending
transitions to/from expected states, write-backs racing ownership
transfers, and contended atomics.  Many of these drive the protocols
at zero coalesce delay and tight timing to maximize overlap.
"""

from repro.coherence.messages import atomic_add
from repro.protocols.denovo import DnState

from tests.harness import MiniSpandex

LINE = 0x6000


def test_concurrent_atomics_from_many_devices_never_lose_updates():
    """30 contended fetch-adds across six caches commit exactly 30
    increments — the single-writer guarantee under maximal churn."""
    devices = {f"d{i}": "DeNovo" for i in range(6)}
    mini = MiniSpandex(devices)
    remaining = {name: 5 for name in devices}
    committed = []
    for _ in range(400):
        if not any(remaining.values()):
            break
        for name, left in remaining.items():
            if left == 0:
                continue
            completion = mini.rmw(name, LINE, 0b1, atomic_add(1))
            if completion.accepted:
                remaining[name] -= 1
                committed.append(completion)
        mini.run(until=mini.engine.now + 7)
    mini.run()
    assert not any(remaining.values())
    assert all(c.done for c in committed)
    owner = mini.llc_owner(LINE, 0)
    final = (mini.l1s[owner].array.lookup(LINE, touch=False).data[0]
             if owner else mini.llc_word(LINE, 0))
    assert final == 30
    # and the observed old values are a permutation of 0..29
    assert sorted(c.values[0] for c in committed) == list(range(30))


def test_mixed_protocol_atomics_serialize():
    mini = MiniSpandex({"mesi": "MESI", "dn": "DeNovo", "gpu": "GPU"})
    done = []
    for _ in range(4):
        for name in ("mesi", "dn", "gpu"):
            completion = mini.rmw(name, LINE, 0b1, atomic_add(1))
            mini.run(until=mini.engine.now + 3)
            done.append(completion)
    mini.run()
    committed = sum(1 for c in done if c.done and c.accepted)
    finals = set()
    owner = mini.llc_owner(LINE, 0)
    if owner is None:
        finals.add(mini.llc_word(LINE, 0))
    else:
        l1 = mini.l1s[owner]
        resident = l1.array.lookup(LINE, touch=False)
        finals.add(resident.data[0])
    assert finals == {committed}


def test_writeback_racing_ownership_transfer():
    """Device A evicts owned words while device B requests ownership:
    the stale write-back must be dropped, B's data must win."""
    mini = MiniSpandex({"a": "DeNovo", "b": "DeNovo"}, coalesce_delay=1)
    mini.store("a", LINE, 0b1, {0: 10})
    mini.release("a")
    mini.run()
    # kick off the eviction and the competing store in the same cycle
    l1a = mini.l1s["a"]
    resident = l1a.array.lookup(LINE, touch=False)
    l1a._evict(resident)
    mini.store("b", LINE, 0b1, {0: 20})
    release = mini.release("b")
    mini.run()
    assert release.done
    assert mini.llc_owner(LINE, 0) in ("b", None)
    if mini.llc_owner(LINE, 0) == "b":
        assert mini.l1s["b"].array.lookup(
            LINE, touch=False).data[0] == 20
    else:
        assert mini.llc_word(LINE, 0) == 20


def test_forwarded_request_during_pending_grant():
    """B's ReqO+data races A's pending ownership grant for the same
    word (§III-C case 1: pending transition *to* expected state)."""
    mini = MiniSpandex({"a": "DeNovo", "b": "DeNovo"}, coalesce_delay=1)
    rmw_a = mini.rmw("a", LINE, 0b1, atomic_add(1))
    mini.run(until=mini.engine.now + 9)     # a's ReqO+data in flight
    rmw_b = mini.rmw("b", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw_a.done and rmw_b.done
    assert sorted([rmw_a.values[0], rmw_b.values[0]]) == [0, 1]
    owner = mini.llc_owner(LINE, 0)
    value = (mini.l1s[owner].array.lookup(LINE, touch=False).data[0]
             if owner else mini.llc_word(LINE, 0))
    assert value == 2


def test_reqv_during_ownership_churn_completes():
    """A reader keeps loading a word whose ownership bounces between
    two writers; the ReqV path (forwards, Nacks, escalation) must
    always produce a value that some writer actually wrote."""
    mini = MiniSpandex({"r": "GPU", "w1": "DeNovo", "w2": "DeNovo"},
                       coalesce_delay=1)
    written = set()
    loads = []
    for round_index in range(8):
        value = 1000 + round_index
        writer = "w1" if round_index % 2 == 0 else "w2"
        mini.store(writer, LINE, 0b1, {0: value})
        written.add(value)
        mini.release(writer)
        loads.append(mini.load("r", LINE, 0b1, invalidate_first=True))
        mini.run(until=mini.engine.now + 15)
    mini.run()
    for load in loads:
        if load.done and load.accepted:
            assert load.values[0] == 0 or load.values[0] in written


def test_store_to_word_with_pending_load_same_line():
    mini = MiniSpandex({"dn": "DeNovo"}, coalesce_delay=1)
    mini.seed(LINE, {1: 7})
    load = mini.load("dn", LINE, 0b10)
    store = mini.store("dn", LINE, 0b1, {0: 3})
    mini.run()
    assert load.done and load.values[1] == 7
    resident = mini.l1s["dn"].array.lookup(LINE, touch=False)
    assert resident.word_states[0] == DnState.O
    assert resident.data[0] == 3


def test_same_word_rmw_serialized_within_one_l1():
    """Two warps sharing one L1 RMW the same word: the second must not
    race the first's ownership grant (the lost-increment bug)."""
    mini = MiniSpandex({"dn": "DeNovo"}, coalesce_delay=1)
    first = mini.rmw("dn", LINE, 0b1, atomic_add(1))
    second = mini.rmw("dn", LINE, 0b1, atomic_add(1))
    assert first.accepted
    assert not second.accepted      # serialized: retry later
    mini.run()
    retry = mini.rmw("dn", LINE, 0b1, atomic_add(1))
    mini.run()
    assert retry.accepted and retry.values[0] == 1


def test_partial_line_mixed_owners_with_invalidations():
    """Words of one line owned by different devices while a MESI core
    wants the whole line: every word's data must survive the shuffle."""
    mini = MiniSpandex({"mesi": "MESI", "a": "DeNovo", "b": "DeNovo"},
                       coalesce_delay=1)
    mini.store("a", LINE, 0b0001, {0: 100})
    mini.store("b", LINE, 0b0010, {1: 200})
    mini.release("a")
    mini.release("b")
    mini.run()
    store = mini.store("mesi", LINE, 0b100, {2: 300})
    release = mini.release("mesi")
    mini.run()
    assert release.done
    resident = mini.l1s["mesi"].array.lookup(LINE, touch=False)
    assert resident is not None
    assert resident.data[0] == 100
    assert resident.data[1] == 200
    assert resident.data[2] == 300
