"""Device-side protocol tests: GPU coherence, DeNovo, MESI (paper §II).

These exercise the distinguishing behaviours of each L1 protocol:
what invalidates at synchronization, what is written through vs owned,
and what granularity requests use.
"""

import pytest

from repro.coherence.addr import FULL_LINE_MASK
from repro.coherence.messages import MsgKind, atomic_add
from repro.protocols.denovo import DnState
from repro.protocols.gpu_coherence import GpuState
from repro.protocols.mesi import MesiState

from tests.harness import MiniSpandex

LINE = 0x8000


# ===========================================================================
# GPU coherence
# ===========================================================================
def test_gpu_load_miss_is_line_granularity():
    mini = MiniSpandex({"gpu": "GPU"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.load("gpu", LINE, 0b1)
    mini.run()
    reqv = [m for m in traffic if m.kind == MsgKind.REQ_V]
    assert len(reqv) == 1
    assert reqv[0].mask == FULL_LINE_MASK
    assert reqv[0].is_line_granularity


def test_gpu_store_is_word_granularity_write_through():
    mini = MiniSpandex({"gpu": "GPU"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("gpu", LINE, 0b100, {2: 5})
    mini.release("gpu")
    mini.run()
    reqwt = [m for m in traffic if m.kind == MsgKind.REQ_WT]
    assert len(reqwt) == 1
    assert reqwt[0].mask == 0b100
    assert not any(m.kind in (MsgKind.REQ_O, MsgKind.REQ_O_DATA)
                   for m in traffic)


def test_gpu_store_buffer_coalesces_words():
    mini = MiniSpandex({"gpu": "GPU"}, coalesce_delay=10)
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("gpu", LINE, 0b001, {0: 1})
    mini.store("gpu", LINE, 0b010, {1: 2})
    mini.store("gpu", LINE, 0b100, {2: 3})
    mini.release("gpu")
    mini.run()
    reqwt = [m for m in traffic if m.kind == MsgKind.REQ_WT]
    assert len(reqwt) == 1
    assert reqwt[0].mask == 0b111


def test_gpu_acquire_flash_invalidates_everything():
    mini = MiniSpandex({"gpu": "GPU"})
    mini.seed(LINE, {0: 1})
    mini.load("gpu", LINE, 0b1)
    mini.run()
    l1 = mini.l1s["gpu"]
    assert l1.array.lookup(LINE, touch=False) is not None
    mini.acquire("gpu")
    mini.run()
    assert l1.array.lookup(LINE, touch=False) is None


def test_gpu_atomics_bypass_l1():
    mini = MiniSpandex({"gpu": "GPU"})
    mini.seed(LINE, {0: 7})
    rmw = mini.rmw("gpu", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw.values[0] == 7
    l1 = mini.l1s["gpu"]
    resident = l1.array.lookup(LINE, touch=False)
    # the line is not cached by the atomic (response is stale data)
    assert resident is None


def test_gpu_load_forwards_from_store_buffer():
    mini = MiniSpandex({"gpu": "GPU"}, coalesce_delay=50)
    mini.store("gpu", LINE, 0b1, {0: 123})
    load = mini.load("gpu", LINE, 0b1)
    mini.run(until=20)
    assert load.done and load.values[0] == 123


# ===========================================================================
# DeNovo
# ===========================================================================
def test_denovo_store_obtains_word_ownership():
    mini = MiniSpandex({"dn": "DeNovo"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("dn", LINE, 0b1, {0: 9})
    mini.release("dn")
    mini.run()
    reqo = [m for m in traffic if m.kind == MsgKind.REQ_O]
    assert len(reqo) == 1 and reqo[0].mask == 0b1
    assert not reqo[0].data                 # ownership only, no data
    l1 = mini.l1s["dn"]
    assert l1.array.lookup(LINE, touch=False).word_states[0] == DnState.O


def test_denovo_acquire_keeps_owned_words():
    # The heart of DeNovo's advantage: Owned data survives sync.
    mini = MiniSpandex({"dn": "DeNovo"})
    mini.seed(LINE, {1: 11})
    mini.store("dn", LINE, 0b1, {0: 5})
    mini.release("dn")
    load = mini.load("dn", LINE, 0b10)
    mini.run()
    l1 = mini.l1s["dn"]
    resident = l1.array.lookup(LINE, touch=False)
    assert resident.word_states[0] == DnState.O
    assert resident.word_states[1] == DnState.V
    mini.acquire("dn")
    mini.run()
    resident = l1.array.lookup(LINE, touch=False)
    assert resident.word_states[0] == DnState.O     # kept
    assert resident.word_states[1] == DnState.I     # self-invalidated
    # and the owned word still hits locally after sync
    load2 = mini.load("dn", LINE, 0b1)
    mini.run()
    assert load2.values[0] == 5


def test_denovo_local_atomic_on_owned_word():
    mini = MiniSpandex({"dn": "DeNovo"})
    first = mini.rmw("dn", LINE, 0b1, atomic_add(1))
    mini.run()
    assert first.values[0] == 0
    hits_before = mini.stats.get("l1.atomic_hits")
    second = mini.rmw("dn", LINE, 0b1, atomic_add(1))
    mini.run()
    assert second.values[0] == 1
    assert mini.stats.get("l1.atomic_hits") == hits_before + 1


def test_denovo_llc_atomic_policy():
    mini = MiniSpandex({"dn": "DeNovo"}, atomic_policy="llc")
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    rmw = mini.rmw("dn", LINE, 0b1, atomic_add(3))
    mini.run()
    assert rmw.done
    assert any(m.kind == MsgKind.REQ_WT_DATA for m in traffic)
    assert mini.llc_word(LINE, 0) == 3


def test_denovo_owned_eviction_writes_back_words_only():
    mini = MiniSpandex({"dn": "DeNovo"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("dn", LINE, 0b11, {0: 1, 1: 2})
    mini.release("dn")
    mini.run()
    l1 = mini.l1s["dn"]
    l1._evict(l1.array.lookup(LINE, touch=False))
    mini.run()
    wb = [m for m in traffic if m.kind == MsgKind.REQ_WB]
    assert len(wb) == 1
    assert wb[0].mask == 0b11               # words, not the full line
    assert wb[0].data == {0: 1, 1: 2}


def test_denovo_forwarded_reqv_served_from_owner():
    mini = MiniSpandex({"dn": "DeNovo", "other": "DeNovo"})
    mini.store("dn", LINE, 0b1, {0: 77})
    mini.release("dn")
    mini.run()
    load = mini.load("other", LINE, 0b1)
    mini.run()
    assert load.values[0] == 77
    # ownership did not move (ReqV transitions nothing)
    assert mini.llc_owner(LINE, 0) == "dn"


def test_denovo_nack_escalation_through_tu():
    """A Nacked ReqV is replaced by an ordering-enforcing ReqO+data
    (paper §III-C.3).  We force the Nack by making the LLC reject one
    ReqV, emulating the owner-departed race of a non-FIFO network."""
    from repro.coherence.messages import Message, MsgKind
    mini = MiniSpandex({"dn": "DeNovo"})
    mini.seed(LINE, {0: 5})
    nacked = []
    original = type(mini.llc)._handle_reqv

    def nack_once(self, msg, line_obj):
        if not nacked:
            nacked.append(msg.req_id)
            self.network.send(Message(
                MsgKind.NACK, msg.line, msg.mask, src=self.name,
                dst=msg.src, req_id=msg.req_id))
            return
        original(self, msg, line_obj)

    mini.llc._handle_reqv = nack_once.__get__(mini.llc)
    load = mini.load("dn", LINE, 0b1)
    mini.run()
    # the TU escalated the Nacked ReqV to ReqO+data and completed
    assert load.done and load.values[0] == 5
    assert mini.stats.get("tu.escalations") == 1
    # the escalation granted ownership of the word
    assert mini.llc_owner(LINE, 0) == "dn"


# ===========================================================================
# MESI
# ===========================================================================
def test_mesi_store_miss_is_line_granularity_rfo():
    mini = MiniSpandex({"cpu": "MESI"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("cpu", LINE, 0b1, {0: 4})
    mini.release("cpu")
    mini.run()
    rfo = [m for m in traffic if m.kind == MsgKind.REQ_O_DATA]
    assert len(rfo) == 1
    assert rfo[0].mask == FULL_LINE_MASK
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False).state == MesiState.M


def test_mesi_silent_upgrade_e_to_m():
    mini = MiniSpandex({"cpu": "MESI"})
    mini.load("cpu", LINE, 0b1)
    mini.run()
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False).state == MesiState.E
    store = mini.store("cpu", LINE, 0b1, {0: 1})
    mini.run(until=mini.engine.now + 5)
    assert l1.array.lookup(LINE, touch=False).state == MesiState.M


def test_mesi_acquire_is_noop():
    mini = MiniSpandex({"cpu": "MESI"})
    mini.seed(LINE, {0: 3})
    mini.load("cpu", LINE, 0b1)
    mini.run()
    mini.acquire("cpu")
    mini.run()
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False) is not None
    hits_before = mini.stats.get("l1.hits")
    load = mini.load("cpu", LINE, 0b1)
    mini.run()
    assert mini.stats.get("l1.hits") == hits_before + 1


def test_mesi_eviction_writes_back_full_line():
    mini = MiniSpandex({"cpu": "MESI"})
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("cpu", LINE, 0b1, {0: 1})
    mini.release("cpu")
    mini.run()
    l1 = mini.l1s["cpu"]
    l1._evict(l1.array.lookup(LINE, touch=False))
    mini.run()
    wb = [m for m in traffic if m.kind == MsgKind.REQ_WB]
    assert len(wb) == 1
    assert wb[0].mask == FULL_LINE_MASK     # full line, by construction
    assert len(wb[0].data) == 16


def test_mesi_local_atomic_needs_m():
    mini = MiniSpandex({"cpu": "MESI"})
    mini.seed(LINE, {0: 10})
    rmw = mini.rmw("cpu", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw.values[0] == 10
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False).state == MesiState.M
    # second atomic hits locally
    rmw2 = mini.rmw("cpu", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw2.values[0] == 11


def test_mesi_shared_reuse_across_writer_rounds():
    """Writer invalidation preserves reuse of untouched shared lines."""
    mini = MiniSpandex({"cpu0": "MESI", "cpu1": "MESI"})
    other_line = LINE + 64
    mini.seed(LINE, {0: 1})
    mini.seed(other_line, {0: 2})
    # cpu0 owns LINE first so cpu1's read triggers option (1) S state
    mini.store("cpu0", LINE, 0b1, {0: 1})
    mini.release("cpu0")
    mini.run()
    for line in (LINE, other_line):
        mini.load("cpu1", line, 0b1)
        mini.run()
    # cpu0 writes only LINE; cpu1 keeps the other line in S
    mini.store("cpu0", LINE, 0b1, {0: 9})
    mini.release("cpu0")
    mini.run()
    l1 = mini.l1s["cpu1"]
    assert l1.array.lookup(LINE, touch=False) is None
    hits_before = mini.stats.get("l1.hits")
    mini.load("cpu1", other_line, 0b1)
    mini.run()
    assert mini.stats.get("l1.hits") == hits_before + 1
    # and the invalidated line re-reads the new value
    load = mini.load("cpu1", LINE, 0b1)
    mini.run()
    assert load.values[0] == 9
