"""MESI translation-unit tests (paper §III-D).

The MESI TU adapts word-granularity Spandex requests to the
line-granularity MESI cache: partial downgrades become a line downgrade
plus a write-back of the untouched words, ownership-only requests
answer immediately during pending upgrades, and lines with write-backs
in flight are served from retained data.
"""

from repro.coherence.addr import FULL_LINE_MASK
from repro.coherence.messages import MsgKind, atomic_add
from repro.protocols.mesi import MesiState

from tests.harness import MiniSpandex

LINE = 0xC000


def owned_setup():
    """MESI cpu owns LINE (all 16 words) with known data."""
    mini = MiniSpandex({"cpu": "MESI", "gpu": "GPU", "dn": "DeNovo"})
    mini.seed(LINE, {i: 100 + i for i in range(16)})
    mini.store("cpu", LINE, 0b1, {0: 200})
    mini.release("cpu")
    mini.run()
    assert mini.llc_owner(LINE, 0) == "cpu"
    assert mini.llc_owner(LINE, 15) == "cpu"
    return mini


def test_fwd_reqv_served_without_downgrade():
    mini = owned_setup()
    load = mini.load("dn", LINE, 1 << 5)
    mini.run()
    assert load.values[5] == 105
    # the MESI line is untouched (ReqV enforces no ordering)
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False).state in (MesiState.M,
                                                        MesiState.E)


def test_fwd_reqwt_partial_downgrade_with_writeback():
    # Figure 1d: the GPU writes through one word of a MESI-owned line.
    mini = owned_setup()
    traffic = []
    mini.network.trace_hook = lambda m, t: traffic.append(m)
    mini.store("gpu", LINE, 1 << 3, {3: 999})
    release = mini.release("gpu")
    mini.run()
    assert release.done
    # MESI line fully downgraded; untouched words written back
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False) is None
    wbs = [m for m in traffic if m.kind == MsgKind.REQ_WB]
    assert wbs and wbs[0].mask == FULL_LINE_MASK & ~(1 << 3)
    # LLC has the write-through value and the written-back dirty word
    assert mini.llc_word(LINE, 3) == 999
    assert mini.llc_word(LINE, 0) == 200
    assert mini.llc_word(LINE, 7) == 107
    assert all(mini.llc_owner(LINE, i) is None for i in range(16))


def test_fwd_reqo_data_word_transfer():
    # a DeNovo store-miss RMW pulls one word's ownership + data out of
    # the MESI line
    mini = owned_setup()
    rmw = mini.rmw("dn", LINE, 1 << 2, atomic_add(1))
    mini.run()
    assert rmw.values[2] == 102
    assert mini.llc_owner(LINE, 2) == "dn"
    # the remaining words were written back and are unowned now
    assert mini.llc_word(LINE, 0) == 200


def test_rvko_for_mesi_owner():
    # an atomic at the LLC revokes the MESI owner
    mini = owned_setup()
    rmw = mini.rmw("gpu", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw.values[0] == 200
    assert mini.llc_word(LINE, 0) == 201
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False) is None


def test_fwd_reqs_downgrades_to_shared():
    # another MESI core reads the owned line: M -> S with a write-back
    mini = MiniSpandex({"cpu0": "MESI", "cpu1": "MESI"})
    mini.store("cpu0", LINE, 0b1, {0: 42})
    mini.release("cpu0")
    mini.run()
    load = mini.load("cpu1", LINE, 0b1)
    mini.run()
    assert load.values[0] == 42
    l1 = mini.l1s["cpu0"]
    assert l1.array.lookup(LINE, touch=False).state == MesiState.S
    assert mini.llc_word(LINE, 0) == 42


def test_external_during_pending_wb_served_from_retained_data():
    mini = owned_setup()
    l1 = mini.l1s["cpu"]
    l1._evict(l1.array.lookup(LINE, touch=False))
    # immediately (before the WB is acknowledged) another device reads
    load = mini.load("dn", LINE, 0b1)
    mini.run()
    assert load.values[0] == 200


def test_tu_partial_writeback_retains_data_until_ack():
    mini = owned_setup()
    tu = mini.tus["cpu"]
    # trigger a partial downgrade
    mini.store("gpu", LINE, 0b1, {0: 7})
    mini.run(until=mini.engine.now + 12)
    # during the window the TU may hold retained data; after quiescence
    # everything is released
    mini.run()
    assert not tu._tu_wb
    assert not tu._own_req_lines


def test_reqo_during_pending_ownership_upgrade():
    """§III-D case 2: ownership-only requests answer immediately while
    the MESI line's own upgrade is in flight; after the grant the line
    goes to I and untouched words write back."""
    mini = MiniSpandex({"cpu": "MESI", "dn": "DeNovo"},
                       coalesce_delay=1)
    mini.seed(LINE, {i: 50 + i for i in range(16)})
    # start a MESI RFO; while it is pending, a DeNovo store to another
    # word of the line arrives at the LLC after the MESI grant, gets
    # forwarded, and must not deadlock
    mini.store("cpu", LINE, 0b1, {0: 1})
    mini.store("dn", LINE, 0b10, {1: 2})
    release_cpu = mini.release("cpu")
    release_dn = mini.release("dn")
    mini.run()
    assert release_cpu.done and release_dn.done
    # final ownership is word-granular and consistent
    assert mini.llc_owner(LINE, 1) in ("dn", None)
    if mini.llc_owner(LINE, 1) is None:
        assert mini.llc_word(LINE, 1) == 2
    coherent = []
    for name, l1 in mini.l1s.items():
        resident = l1.array.lookup(LINE, touch=False)
        if resident is not None and name == "dn" and \
                resident.word_states[1].value == "O":
            coherent.append(resident.data[1])
    if coherent:
        assert coherent == [2]
