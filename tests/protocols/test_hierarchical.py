"""Hierarchical baseline tests: MESI directory L3 and GPU L2.

Exercises the blocking directory transients and the GPU L2's dual role
(Spandex-style home for its L1s, MESI client upward) — the organization
Spandex is evaluated against (paper §II-D, §IV-A).
"""


from repro.coherence.messages import atomic_add
from repro.core.tu import make_tu
from repro.protocols.denovo import DeNovoL1, DnState
from repro.protocols.gpu_coherence import GPUCoherenceL1
from repro.protocols.mesi import MESIL1, MesiState
from repro.protocols.mesi_llc import DirState, MESIDirectoryLLC

from tests.systems import MiniHier

LINE = 0x2000


def test_cpu_gets_exclusive_then_shared():
    mini = MiniHier(cpus=2)
    mini.dram.poke(LINE, {0: 5})
    load = mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 5
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.E
    # second reader: FwdGetS downgrades the first to S
    load2 = mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    assert load2.values[0] == 5
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.S
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.S


def test_getm_invalidates_sharers():
    mini = MiniHier(cpus=2)
    mini.dram.poke(LINE, {0: 5})
    mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    store = mini.access("cpu0", "store", LINE, 0b1, values={0: 9})
    release = mini.release("cpu0")
    mini.run()
    assert release.done
    assert mini.l1s["cpu1"].array.lookup(LINE, touch=False) is None
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.M


def test_dirty_transfer_between_cpus():
    mini = MiniHier(cpus=2)
    mini.access("cpu0", "store", LINE, 0b1, values={0: 77})
    mini.release("cpu0")
    mini.run()
    load = mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 77


def test_gpu_write_through_goes_through_l2():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 11})
    release = mini.release("gpu0")
    mini.run()
    assert release.done
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line is not None and l2_line.data[0] == 11
    # the L2 holds the line in M upstream; dir records it as owner
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.M
    assert dir_line.meta["owner"] == "gpu_l2"


def test_cpu_read_recalls_gpu_l2_dirty_line():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 13})
    mini.release("gpu0")
    mini.run()
    load = mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 13
    # the L2 was downgraded to S upstream
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line.meta.get("up_state") == "S"


def test_l2_recalls_l1_owned_words_on_fwd_getm():
    # HMD: DeNovo GPU L1 owns a word inside the L2; a CPU write must
    # pull the word back through the recall machinery.
    mini = MiniHier(cpus=1, gpus=1, gpu_protocol="DeNovo")
    mini.access("gpu0", "store", LINE, 0b1, values={0: 21})
    mini.release("gpu0")
    mini.run()
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line.owner[0] == "gpu0"
    store = mini.access("cpu0", "store", LINE, 0b10, values={1: 5})
    release = mini.release("cpu0")
    mini.run()
    assert release.done
    cpu_line = mini.l1s["cpu0"].array.lookup(LINE, touch=False)
    assert cpu_line.state == MesiState.M
    assert cpu_line.data[0] == 21       # recalled dirty word traveled
    # the gpu L1 lost ownership
    gpu_line = mini.l1s["gpu0"].array.lookup(LINE, touch=False)
    assert gpu_line is None or gpu_line.word_states[0] != DnState.O


def test_gpu_atomic_performed_at_l2():
    mini = MiniHier(cpus=0, gpus=2)
    rmw1 = mini.access("gpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    rmw2 = mini.access("gpu1", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    assert rmw1.values[0] == 0
    assert rmw2.values[0] == 1
    assert mini.gpu_l2.array.lookup(LINE, touch=False).data[0] == 2


def test_l2_eviction_putm_releases_ownership():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 3})
    mini.release("gpu0")
    mini.run()
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    mini.gpu_l2._evict(l2_line, lambda: None)
    mini.run()
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.V
    assert dir_line.data[0] == 3


def test_directory_blocking_serializes_writers():
    mini = MiniHier(cpus=2, gpus=1)
    # everyone hammers the same word through different paths
    mini.access("cpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.access("cpu1", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.access("gpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    values = []
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    # the final count must be exactly 3 wherever the line lives
    if dir_line.state == DirState.M:
        owner = dir_line.meta["owner"]
        if owner == "gpu_l2":
            values.append(mini.gpu_l2.array.lookup(
                LINE, touch=False).data[0])
        else:
            values.append(mini.l1s[owner].array.lookup(
                LINE, touch=False).data[0])
    else:
        values.append(dir_line.data[0])
    assert values == [3]
