"""Hierarchical baseline tests: MESI directory L3 and GPU L2.

Exercises the blocking directory transients and the GPU L2's dual role
(Spandex-style home for its L1s, MESI client upward) — the organization
Spandex is evaluated against (paper §II-D, §IV-A).
"""

from typing import Dict

from repro.coherence.messages import atomic_add
from repro.core.tu import make_tu
from repro.mem.dram import MainMemory
from repro.network.noc import LatencyModel, Network
from repro.protocols.base import Access
from repro.protocols.denovo import DeNovoL1, DnState
from repro.protocols.gpu_coherence import GPUCoherenceL1
from repro.protocols.gpu_l2 import GPUL2
from repro.protocols.mesi import MESIL1, MesiState
from repro.protocols.mesi_llc import DirState, MESIDirectoryLLC
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

from tests.harness import Completion

LINE = 0x2000


class MiniHier:
    """CPU MESI L1s + GPU L1s behind a GPU L2, over a directory L3."""

    def __init__(self, cpus=1, gpus=1, gpu_protocol="GPU"):
        self.engine = Engine()
        self.stats = StatsRegistry()
        self.network = Network(self.engine, self.stats,
                               LatencyModel(default=5))
        self.dram = MainMemory(self.engine, self.stats, latency=20)
        self.l3 = MESIDirectoryLLC(self.engine, self.network, self.stats,
                                   self.dram, size_bytes=256 * 1024,
                                   access_latency=3)
        self.gpu_l2 = GPUL2(self.engine, "gpu_l2", self.network,
                            self.stats, size_bytes=64 * 1024,
                            access_latency=2, l3_name="l3")
        self.l1s: Dict[str, object] = {}
        for i in range(cpus):
            name = f"cpu{i}"
            self.l1s[name] = MESIL1(
                self.engine, name, self.network, self.stats, home="l3",
                dialect="mesi", size_bytes=8 * 1024, coalesce_delay=1)
        for i in range(gpus):
            name = f"gpu{i}"
            cls = GPUCoherenceL1 if gpu_protocol == "GPU" else DeNovoL1
            kwargs = dict(size_bytes=8 * 1024, coalesce_delay=1)
            if gpu_protocol == "DeNovo":
                kwargs["nack_retry_limit"] = 3
            l1 = cls(self.engine, name, self.network, self.stats,
                     home="gpu_l2", **kwargs)
            self.gpu_l2.device_protocols[name] = l1.PROTOCOL_FAMILY
            self.l1s[name] = l1

    def run(self, **kwargs):
        return self.engine.run(max_events=kwargs.pop("max_events", 500_000),
                               **kwargs)

    def access(self, device, kind, line, mask, values=None, atomic=None):
        completion = Completion()
        access = Access(kind, line, mask, callback=completion,
                        values=values or {}, atomic=atomic)
        completion.accepted = self.l1s[device].try_access(access)
        return completion

    def release(self, device):
        completion = Completion()
        self.l1s[device].fence_release(lambda: completion({}))
        return completion


def test_cpu_gets_exclusive_then_shared():
    mini = MiniHier(cpus=2)
    mini.dram.poke(LINE, {0: 5})
    load = mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 5
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.E
    # second reader: FwdGetS downgrades the first to S
    load2 = mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    assert load2.values[0] == 5
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.S
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.S


def test_getm_invalidates_sharers():
    mini = MiniHier(cpus=2)
    mini.dram.poke(LINE, {0: 5})
    mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    store = mini.access("cpu0", "store", LINE, 0b1, values={0: 9})
    release = mini.release("cpu0")
    mini.run()
    assert release.done
    assert mini.l1s["cpu1"].array.lookup(LINE, touch=False) is None
    assert mini.l1s["cpu0"].array.lookup(LINE, touch=False).state == \
        MesiState.M


def test_dirty_transfer_between_cpus():
    mini = MiniHier(cpus=2)
    mini.access("cpu0", "store", LINE, 0b1, values={0: 77})
    mini.release("cpu0")
    mini.run()
    load = mini.access("cpu1", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 77


def test_gpu_write_through_goes_through_l2():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 11})
    release = mini.release("gpu0")
    mini.run()
    assert release.done
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line is not None and l2_line.data[0] == 11
    # the L2 holds the line in M upstream; dir records it as owner
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.M
    assert dir_line.meta["owner"] == "gpu_l2"


def test_cpu_read_recalls_gpu_l2_dirty_line():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 13})
    mini.release("gpu0")
    mini.run()
    load = mini.access("cpu0", "load", LINE, 0b1)
    mini.run()
    assert load.values[0] == 13
    # the L2 was downgraded to S upstream
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line.meta.get("up_state") == "S"


def test_l2_recalls_l1_owned_words_on_fwd_getm():
    # HMD: DeNovo GPU L1 owns a word inside the L2; a CPU write must
    # pull the word back through the recall machinery.
    mini = MiniHier(cpus=1, gpus=1, gpu_protocol="DeNovo")
    mini.access("gpu0", "store", LINE, 0b1, values={0: 21})
    mini.release("gpu0")
    mini.run()
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    assert l2_line.owner[0] == "gpu0"
    store = mini.access("cpu0", "store", LINE, 0b10, values={1: 5})
    release = mini.release("cpu0")
    mini.run()
    assert release.done
    cpu_line = mini.l1s["cpu0"].array.lookup(LINE, touch=False)
    assert cpu_line.state == MesiState.M
    assert cpu_line.data[0] == 21       # recalled dirty word traveled
    # the gpu L1 lost ownership
    gpu_line = mini.l1s["gpu0"].array.lookup(LINE, touch=False)
    assert gpu_line is None or gpu_line.word_states[0] != DnState.O


def test_gpu_atomic_performed_at_l2():
    mini = MiniHier(cpus=0, gpus=2)
    rmw1 = mini.access("gpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    rmw2 = mini.access("gpu1", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    assert rmw1.values[0] == 0
    assert rmw2.values[0] == 1
    assert mini.gpu_l2.array.lookup(LINE, touch=False).data[0] == 2


def test_l2_eviction_putm_releases_ownership():
    mini = MiniHier(cpus=1, gpus=1)
    mini.access("gpu0", "store", LINE, 0b1, values={0: 3})
    mini.release("gpu0")
    mini.run()
    l2_line = mini.gpu_l2.array.lookup(LINE, touch=False)
    mini.gpu_l2._evict(l2_line, lambda: None)
    mini.run()
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    assert dir_line.state == DirState.V
    assert dir_line.data[0] == 3


def test_directory_blocking_serializes_writers():
    mini = MiniHier(cpus=2, gpus=1)
    # everyone hammers the same word through different paths
    mini.access("cpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.access("cpu1", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.access("gpu0", "rmw", LINE, 0b1, atomic=atomic_add(1))
    mini.run()
    values = []
    dir_line = mini.l3.array.lookup(LINE, touch=False)
    # the final count must be exactly 3 wherever the line lives
    if dir_line.state == DirState.M:
        owner = dir_line.meta["owner"]
        if owner == "gpu_l2":
            values.append(mini.gpu_l2.array.lookup(
                LINE, touch=False).data[0])
        else:
            values.append(mini.l1s[owner].array.lookup(
                LINE, touch=False).data[0])
    else:
        values.append(dir_line.data[0])
    assert values == [3]
