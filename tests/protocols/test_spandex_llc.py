"""Spandex LLC protocol tests (paper §III-B, Table III, Figure 1).

Each test drives a miniature Spandex system (LLC + device caches behind
TUs) and checks the LLC-side transitions the paper specifies.
"""

import pytest

from repro.coherence.addr import FULL_LINE_MASK
from repro.coherence.messages import atomic_add
from repro.core.home import HomeState

from tests.systems import MiniSpandex, make_sdd, make_smg

LINE = 0x4000


# -- ReqV: no state transition, data response -------------------------------
def test_reqv_returns_data_and_leaves_state():
    mini = make_sdd()
    mini.seed(LINE, {2: 77})
    load = mini.load("cpu", LINE, 0b100)
    mini.run()
    assert load.done and load.values[2] == 77
    resident = mini.llc_line(LINE)
    assert resident.state == HomeState.V
    assert mini.llc_owner(LINE, 2) is None


def test_reqv_response_carries_available_line_words():
    # "a read response may be sent at line granularity when more data
    # in the requested line is available"
    mini = make_sdd()
    mini.seed(LINE, {0: 1, 5: 6, 15: 16})
    mini.load("cpu", LINE, 0b1)
    mini.run()
    l1 = mini.l1s["cpu"]
    resident = l1.array.lookup(LINE, touch=False)
    # extra words were installed as Valid
    assert resident.data[5] == 6
    assert resident.data[15] == 16


# -- ReqO: data-less ownership grant (Figure 1a) -----------------------------
def test_reqo_grants_ownership_without_data():
    mini = make_sdd()
    store = mini.store("cpu", LINE, 0b1, {0: 42})
    release = mini.release("cpu")
    mini.run()
    assert release.done
    assert mini.llc_owner(LINE, 0) == "cpu"
    # the store's value lives at the device, not the LLC
    l1 = mini.l1s["cpu"]
    assert l1.array.lookup(LINE, touch=False).data[0] == 42


def test_reqo_word_granularity_avoids_false_sharing():
    # Figure 1a: two devices own different words of the same line with
    # no blocking and no data transfer.
    mini = make_sdd()
    mini.store("cpu", LINE, 0b0001, {0: 1})
    mini.store("gpu", LINE, 0b1000, {3: 2})
    release_a = mini.release("cpu")
    release_b = mini.release("gpu")
    mini.run()
    assert release_a.done and release_b.done
    assert mini.llc_owner(LINE, 0) == "cpu"
    assert mini.llc_owner(LINE, 3) == "gpu"
    assert mini.stats.get("llc.revokes_sent") == 0


# -- ReqWT: immediate update at LLC ------------------------------------------
def test_reqwt_updates_llc_data():
    mini = make_smg()
    mini.store("gpu", LINE, 0b10, {1: 9})
    release = mini.release("gpu")
    mini.run()
    assert release.done
    assert mini.llc_word(LINE, 1) == 9
    assert mini.llc_owner(LINE, 1) is None


def test_reqwt_to_owned_word_forwards_and_unowns():
    # Figure 1d: write-through for remotely-owned data — LLC updates
    # immediately, forwards to the owner which answers the requestor.
    mini = MiniSpandex({"dn": "DeNovo", "gpu": "GPU"})
    mini.store("dn", LINE, 0b1, {0: 5})
    mini.release("dn")
    mini.run()
    assert mini.llc_owner(LINE, 0) == "dn"
    mini.store("gpu", LINE, 0b1, {0: 6})
    release = mini.release("gpu")
    mini.run()
    assert release.done
    assert mini.llc_owner(LINE, 0) is None
    assert mini.llc_word(LINE, 0) == 6
    # and the previous owner's copy was invalidated
    load = mini.load("dn", LINE, 0b1, invalidate_first=True)
    mini.run()
    assert load.values[0] == 6


# -- ReqWT+data: atomics at the LLC (Figure 1b) -------------------------------
def test_atomic_at_llc_returns_old_value():
    mini = make_smg()
    mini.seed(LINE, {0: 10})
    rmw = mini.rmw("gpu", LINE, 0b1, atomic_add(5))
    mini.run()
    assert rmw.done and rmw.values[0] == 10
    assert mini.llc_word(LINE, 0) == 15


def test_atomic_revokes_remote_owner():
    # Figure 1b: ReqWT+data for remotely-owned data triggers RvkO and a
    # blocking transient until the write-back arrives.
    mini = MiniSpandex({"dn": "DeNovo", "gpu": "GPU"})
    mini.store("dn", LINE, 0b1, {0: 100})
    mini.release("dn")
    mini.run()
    rmw = mini.rmw("gpu", LINE, 0b1, atomic_add(1))
    mini.run()
    assert rmw.values[0] == 100          # the owner's value was revoked
    assert mini.llc_word(LINE, 0) == 101
    assert mini.llc_owner(LINE, 0) is None
    assert mini.stats.get("llc.revokes_sent") == 1


# -- ReqS policy --------------------------------------------------------------
def test_reqs_exclusive_grant_when_unshared():
    # Option (3): like MESI's E response, the requestor gets ownership.
    mini = make_smg()
    mini.seed(LINE, {0: 3})
    load = mini.load("cpu", LINE, 0b1)
    mini.run()
    assert load.done and load.values[0] == 3
    assert mini.llc_owner(LINE, 0) == "cpu"


def test_reqs_shared_when_owned_by_mesi_core():
    # Option (1) when the data is owned in a MESI core: the owner
    # writes back, keeps S, and both cores become sharers.
    mini = MiniSpandex({"cpu0": "MESI", "cpu1": "MESI"})
    store = mini.store("cpu0", LINE, 0b1, {0: 55})
    mini.release("cpu0")
    mini.run()
    load = mini.load("cpu1", LINE, 0b1)
    mini.run()
    assert load.done and load.values[0] == 55
    resident = mini.llc_line(LINE)
    assert resident.state == HomeState.S
    sharers = resident.meta.get("sharers", set())
    assert {"cpu0", "cpu1"} <= sharers
    assert mini.llc_owner(LINE, 0) is None


def test_write_invalidates_sharers():
    mini = MiniSpandex({"cpu0": "MESI", "cpu1": "MESI", "gpu": "GPU"})
    mini.store("cpu0", LINE, 0b1, {0: 1})
    mini.release("cpu0")
    mini.run()
    mini.load("cpu1", LINE, 0b1)
    mini.run()
    assert mini.llc_line(LINE).state == HomeState.S
    # a GPU write-through must invalidate both MESI sharers
    mini.store("gpu", LINE, 0b1, {0: 2})
    release = mini.release("gpu")
    mini.run()
    assert release.done
    assert mini.llc_line(LINE).state == HomeState.V
    assert mini.stats.get("llc.invalidations_sent") >= 2
    # the sharers dropped their copies
    for name in ("cpu0", "cpu1"):
        resident = mini.l1s[name].array.lookup(LINE, touch=False)
        assert resident is None or resident.state.value in ("I",)


# -- ReqWB -------------------------------------------------------------------
def test_reqwb_from_owner_applies_data():
    mini = make_sdd()
    mini.store("cpu", LINE, 0b1, {0: 88})
    mini.release("cpu")
    mini.run()
    # force the eviction path by filling the set
    l1 = mini.l1s["cpu"]
    resident = l1.array.lookup(LINE, touch=False)
    l1._evict(resident)
    mini.run()
    assert mini.llc_owner(LINE, 0) is None
    assert mini.llc_word(LINE, 0) == 88


def test_reqwb_from_non_owner_dropped():
    # A write-back racing an ownership transfer is acked and dropped.
    mini = make_sdd()
    mini.store("cpu", LINE, 0b1, {0: 1})
    mini.release("cpu")
    mini.run()
    # transfer ownership to gpu
    mini.store("gpu", LINE, 0b1, {0: 2})
    mini.release("gpu")
    mini.run()
    assert mini.llc_owner(LINE, 0) == "gpu"
    before = mini.llc_word(LINE, 0)
    # now the stale owner writes back
    from repro.coherence.messages import Message, MsgKind
    msg = Message(MsgKind.REQ_WB, LINE, 0b1, "cpu", "llc", data={0: 1})
    inflight = mini.l1s["cpu"]._track(msg, "wb")
    inflight.meta["wb_line"] = LINE
    inflight.meta["wb_mask"] = 0b1
    mini.l1s["cpu"]._write_issued()
    mini.network.send(msg)
    mini.run()
    assert mini.llc_owner(LINE, 0) == "gpu"
    assert mini.stats.get("llc.stale_writebacks") >= 1


# -- non-blocking ownership transfer ------------------------------------------
def test_ownership_transfer_is_non_blocking():
    # Table III: ReqO for O data forwards without a blocking state; the
    # LLC keeps serving other words of the line meanwhile.
    mini = make_sdd()
    mini.store("cpu", LINE, 0b1, {0: 1})
    mini.release("cpu")
    mini.run()
    mini.store("gpu", LINE, 0b1, {0: 2})
    # while the transfer is in flight, a load of another word succeeds
    load = mini.load("gpu", LINE, 0b100)
    mini.run()
    assert load.done
    assert mini.llc_owner(LINE, 0) == "gpu"


def test_llc_eviction_writes_back_dirty():
    mini = MiniSpandex({"gpu": "GPU"}, llc_size=2 * 1024)
    # write through enough distinct lines to overflow the 2KB LLC
    lines = [0x10000 + i * 2 * 1024 for i in range(40)]
    for i, line in enumerate(lines):
        mini.store("gpu", line, 0b1, {0: i + 1})
        mini.release("gpu")
        mini.run()
    assert mini.stats.get("llc.evictions") > 0
    # evicted dirty data landed in DRAM
    evicted = [line for line in lines
               if mini.llc_line(line) is None]
    assert evicted
    for line in evicted:
        index = lines.index(line)
        assert mini.dram.peek(line)[0] == index + 1
