"""Back-compat re-export: the shared fixtures live in tests.systems.

Older test modules (and downstream branches) import ``MiniSpandex`` /
``Completion`` / ``drive_until_accepted`` from here; the single source
of truth for system construction is :mod:`tests.systems`.
"""

from tests.systems import (  # noqa: F401
    Completion,
    L1_CLASSES,
    MiniHier,
    MiniSpandex,
    drive_until_accepted,
    make_sdd,
    make_smg,
)
