"""Shared test harness: miniature systems for protocol-level tests.

``MiniSpandex`` wires an engine, network, DRAM and Spandex LLC with a
configurable set of device L1s (each behind its TU), letting tests
drive individual Access objects and inspect protocol state without the
full device models.  ``run()`` drains the event queue.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.messages import AtomicOp
from repro.core.llc import SpandexLLC
from repro.core.tu import make_tu
from repro.mem.dram import MainMemory
from repro.network.noc import LatencyModel, Network
from repro.protocols.base import Access
from repro.protocols.denovo import DeNovoL1
from repro.protocols.gpu_coherence import GPUCoherenceL1
from repro.protocols.mesi import MESIL1
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

L1_CLASSES = {
    "MESI": MESIL1,
    "GPU": GPUCoherenceL1,
    "DeNovo": DeNovoL1,
}


class MiniSpandex:
    """A Spandex LLC plus named device caches behind TUs."""

    def __init__(self, devices: Dict[str, str],
                 llc_size: int = 256 * 1024, l1_size: int = 8 * 1024,
                 coalesce_delay: int = 1, **l1_kwargs):
        self.engine = Engine()
        self.stats = StatsRegistry()
        self.network = Network(self.engine, self.stats,
                               LatencyModel(default=5))
        self.dram = MainMemory(self.engine, self.stats, latency=20)
        self.llc = SpandexLLC(self.engine, self.network, self.stats,
                              self.dram, size_bytes=llc_size,
                              access_latency=3)
        self.l1s: Dict[str, object] = {}
        self.tus: Dict[str, object] = {}
        for name, family in devices.items():
            cls = L1_CLASSES[family]
            kwargs = dict(size_bytes=l1_size,
                          coalesce_delay=coalesce_delay)
            if family == "DeNovo":
                kwargs["nack_retry_limit"] = 0
            kwargs.update(l1_kwargs)
            l1 = cls(self.engine, name, self.network, self.stats,
                     home="llc", register_on_network=False, **kwargs)
            tu = make_tu(self.engine, self.network, self.stats, l1)
            self.llc.device_protocols[name] = l1.PROTOCOL_FAMILY
            self.l1s[name] = l1
            self.tus[name] = tu

    # -- driving ---------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: int = 1_000_000) -> int:
        return self.engine.run(until=until, max_events=max_events)

    def load(self, device: str, line: int, mask: int,
             invalidate_first: bool = False) -> "Completion":
        completion = Completion()
        access = Access("load", line, mask, callback=completion,
                        invalidate_first=invalidate_first)
        completion.accepted = self.l1s[device].try_access(access)
        return completion

    def store(self, device: str, line: int, mask: int,
              values: Dict[int, int]) -> "Completion":
        completion = Completion()
        access = Access("store", line, mask, values=values,
                        callback=completion)
        completion.accepted = self.l1s[device].try_access(access)
        return completion

    def rmw(self, device: str, line: int, mask: int,
            atomic: AtomicOp) -> "Completion":
        completion = Completion()
        access = Access("rmw", line, mask, atomic=atomic,
                        callback=completion)
        completion.accepted = self.l1s[device].try_access(access)
        return completion

    def release(self, device: str) -> "Completion":
        completion = Completion()
        self.l1s[device].fence_release(lambda: completion({}))
        return completion

    def acquire(self, device: str) -> "Completion":
        completion = Completion()
        self.l1s[device].fence_acquire(lambda: completion({}))
        return completion

    # -- inspection --------------------------------------------------------
    def llc_line(self, line: int):
        return self.llc.array.lookup(line, touch=False)

    def llc_owner(self, line: int, index: int) -> Optional[str]:
        resident = self.llc_line(line)
        return resident.owner[index] if resident is not None else None

    def llc_word(self, line: int, index: int) -> Optional[int]:
        resident = self.llc_line(line)
        return resident.data[index] if resident is not None else None

    def seed(self, line: int, values: Dict[int, int]) -> None:
        self.dram.poke(line, values)


class Completion:
    """Callback recorder: call state plus returned values."""

    def __init__(self):
        self.done = False
        self.values: Dict[int, int] = {}
        self.count = 0
        self.accepted: Optional[bool] = None

    def __call__(self, values: Dict[int, int]) -> None:
        self.done = True
        self.count += 1
        self.values = dict(values)


def drive_until_accepted(mini: MiniSpandex, fn, *args,
                         attempts: int = 200, step: int = 5) -> Completion:
    """Retry an access each ``step`` cycles until the L1 accepts it."""
    for _ in range(attempts):
        completion = fn(*args)
        if completion.accepted:
            return completion
        mini.run(until=mini.engine.now + step)
    raise AssertionError("access never accepted")
