"""Schedule exploration: bounded DFS, random walks, shrink and replay.

Tier-1 runs a small bounded DFS on two configurations per scenario and
exercises the failing-schedule machinery against a seeded mutant; the
``slow`` suite sweeps the full DFS bound and the seed matrix across all
six configurations (the nightly job).
"""

import pytest

from repro.system.config import CONFIGS
from repro.verify import (CORPUS, DfsExplorer, RandomWalkExplorer,
                          replay_schedule, run_schedule, scenario_by_name,
                          shrink_failure)
from repro.verify.explorer import (ControlledNetwork, FAILURE_KINDS,
                                   PrefixChooser, RandomChooser)
from repro.verify.mutants import mutant_by_name

CONFIG_NAMES = tuple(CONFIGS)
SMOKE_CONFIGS = ("SMG", "HMG")          # one Spandex, one hierarchical


# -- choosers ---------------------------------------------------------------
@pytest.mark.tier1
def test_prefix_chooser_records_branching():
    chooser = PrefixChooser([1, 0])
    assert chooser.choose(3) == 1
    assert chooser.choose(2) == 0
    assert chooser.choose(2) == 0          # beyond the prefix: default 0
    assert chooser.record == [1, 0, 0]
    assert chooser.branching == [3, 2, 2]


@pytest.mark.tier1
def test_random_chooser_is_seed_deterministic():
    a = [RandomChooser(7).choose(4) for _ in range(16)]
    b = [RandomChooser(7).choose(4) for _ in range(16)]
    assert a == b


# -- bounded DFS smoke (tier-1) ---------------------------------------------
@pytest.mark.tier1
@pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_bounded_dfs_smoke(scenario, config_name):
    result = DfsExplorer(max_schedules=8).explore(scenario, config_name)
    assert result.ok, result.failures


@pytest.mark.tier1
def test_random_walk_smoke():
    scenario = scenario_by_name("mp-flag-handoff")
    for config_name in SMOKE_CONFIGS:
        result = RandomWalkExplorer(seeds=range(3)).explore(
            scenario, config_name)
        assert result.ok, result.failures


# -- failing-schedule machinery against a seeded bug ------------------------
@pytest.mark.tier1
def test_explorer_finds_seeded_bug_and_shrinks_it():
    mutant = mutant_by_name("home-stale-wb-applies")
    scenario = scenario_by_name("wb-races-reqwt")
    with mutant.applied():
        result = DfsExplorer(max_schedules=120).explore(scenario, "SMG")
        assert result.failures, "seeded bug not found by bounded DFS"
        failure = result.failures[0]
        assert failure.scenario == scenario.name
        assert failure.config == "SMG"
        shrunk = shrink_failure(scenario, "SMG", failure.choices)
        assert len(shrunk) <= len(failure.choices)
        # the shrunk schedule still reproduces deterministically
        with pytest.raises(FAILURE_KINDS):
            replay_schedule(scenario, "SMG", shrunk)
    # and with the mutant reverted the same schedule passes
    replay_schedule(scenario, "SMG", shrunk)


@pytest.mark.tier1
def test_failure_dump_names_scenario_and_schedule():
    mutant = mutant_by_name("home-stale-wb-applies")
    scenario = scenario_by_name("wb-races-reqwt")
    with mutant.applied():
        result = DfsExplorer(max_schedules=120).explore(scenario, "SMG")
    failure = result.failures[0]
    verify = failure.diagnostic.get("verify", {})
    assert verify.get("scenario") == scenario.name
    assert verify.get("config") == "SMG"
    assert "choices" in verify or "seed" in verify


@pytest.mark.tier1
def test_forced_nack_scenario_exercises_retry_path():
    # reqv-departed-owner forces the FIFO-unreachable Nack leg through
    # the home's deterministic fault hook; the retry path must converge
    scenario = scenario_by_name("reqv-departed-owner")
    for config_name in ("SDD", "SDG"):
        run_schedule(scenario, config_name, None)


# -- controlled network unit behaviour --------------------------------------
@pytest.mark.tier1
def test_deliverable_orders_heads_oldest_first():
    from repro.coherence.messages import Message, MsgKind
    from repro.sim.engine import Engine
    from repro.sim.stats import StatsRegistry

    class _Sink:
        def __init__(self, name):
            self.name = name

        def receive(self, msg):
            pass

    net = ControlledNetwork(Engine(), StatsRegistry())
    for name in ("a", "b", "z"):
        net.register(_Sink(name))
    first = Message(MsgKind.REQ_V, 0x100, 0b1, src="z", dst="b")
    second = Message(MsgKind.REQ_V, 0x140, 0b1, src="a", dst="b")
    net.send(first)
    net.send(second)
    heads = net.deliverable()
    assert heads[0] is first            # enqueue order, not link-name order


# -- full sweeps (nightly) ---------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_full_dfs_sweep(scenario, config_name):
    result = DfsExplorer(max_schedules=40).explore(scenario, config_name)
    assert result.ok, result.failures


@pytest.mark.slow
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_seed_matrix_random_walk(scenario, config_name):
    result = RandomWalkExplorer(seeds=range(8)).explore(
        scenario, config_name)
    assert result.ok, result.failures
