"""Cross-shard litmus scenarios: bounded DFS over 2-shard verify
systems, plus the shard plumbing through ``run_schedule`` /
``VerifySystem``.  These scenarios home the data and the publication
flag at *different* shards, so the release/acquire edges are no longer
serialized by a single home.
"""

import pytest

from repro.system.config import SPANDEX_CONFIGS
from repro.verify import CORPUS, DfsExplorer, run_schedule, scenario_by_name
from repro.verify.systems import VerifySystem

XSHARD = tuple(s for s in CORPUS if "xshard" in s.tags)
SMOKE_CONFIGS = ("SMG", "SDD")


@pytest.mark.tier1
def test_corpus_has_cross_shard_scenarios():
    assert len(XSHARD) >= 3
    for scenario in XSHARD:
        assert scenario.build().get("llc_shards", 1) >= 2, scenario.name


@pytest.mark.tier1
@pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
@pytest.mark.parametrize("scenario", XSHARD, ids=lambda s: s.name)
def test_xshard_bounded_dfs(scenario, config_name):
    result = DfsExplorer(max_schedules=16).explore(scenario, config_name)
    assert result.ok, result.failures


@pytest.mark.tier1
def test_run_schedule_builds_two_shards():
    scenario = scenario_by_name("xshard-mp-handoff")
    for config_name in ("SMG", "SDD"):
        run_schedule(scenario, config_name, None)


@pytest.mark.tier1
def test_verify_system_shard_wiring():
    system = VerifySystem("SDD", llc_shards=2)
    assert [shard.name for shard in system.llcs] == ["llc0", "llc1"]
    # every L1 resolves homes through the shared map
    for _name, l1 in system.l1s.items():
        assert l1.home_map is system.home_map
        assert l1.home_for(0x1_0000) == "llc0"
        assert l1.home_for(0x1_0040) == "llc1"


@pytest.mark.tier1
def test_verify_system_single_shard_keeps_name():
    system = VerifySystem("SDD", llc_shards=1)
    assert [shard.name for shard in system.llcs] == ["llc"]


@pytest.mark.tier1
def test_hierarchical_ignores_shard_request():
    system = VerifySystem("HMG", llc_shards=2)
    assert system.llc_shards == 1


# -- full sweep (nightly) -----------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("config_name", SPANDEX_CONFIGS)
@pytest.mark.parametrize("scenario", XSHARD, ids=lambda s: s.name)
def test_xshard_full_dfs(scenario, config_name):
    result = DfsExplorer(max_schedules=48).explore(scenario, config_name)
    assert result.ok, result.failures
