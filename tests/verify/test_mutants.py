"""Mutation killing: every seeded protocol bug must be caught.

Tier-1 proves the patch/revert machinery and kills two cheap mutants;
the ``slow`` suite runs the full catalog through its kill hints (the
nightly bar: every mutant killed).
"""

import pytest

from repro.verify import (DfsExplorer, RandomWalkExplorer, run_schedule,
                          scenario_by_name)
from repro.verify.mutants import MUTANTS, kill_matrix, mutant_by_name


def _hint_killed(mutant, dfs_budget=120, seeds=6) -> bool:
    for scenario_name in mutant.kill_hints:
        scenario = scenario_by_name(scenario_name)
        for config_name in mutant.configs:
            result = DfsExplorer(max_schedules=dfs_budget).explore(
                scenario, config_name)
            if result.failures:
                return True
            result = RandomWalkExplorer(seeds=range(seeds)).explore(
                scenario, config_name)
            if result.failures:
                return True
    return False


@pytest.mark.tier1
def test_catalog_is_large_enough():
    assert len(MUTANTS) >= 4


@pytest.mark.tier1
def test_patches_revert_cleanly():
    mutant = mutant_by_name("gpu-acquire-no-flash")
    originals = [(cls, attr, cls.__dict__[attr])
                 for cls, attr, _fn in mutant.patches]
    with mutant.applied():
        for (cls, attr, _orig), (_c, _a, fn) in zip(originals,
                                                    mutant.patches):
            assert cls.__dict__[attr] is fn
    for cls, attr, original in originals:
        assert cls.__dict__[attr] is original


@pytest.mark.tier1
def test_hints_reference_real_scenarios_and_configs():
    from repro.system.config import CONFIGS
    for mutant in MUTANTS:
        assert mutant.kill_hints, mutant.name
        assert mutant.configs, mutant.name
        for scenario_name in mutant.kill_hints:
            scenario_by_name(scenario_name)          # raises if unknown
        for config_name in mutant.configs:
            assert config_name in CONFIGS


@pytest.mark.tier1
@pytest.mark.parametrize("name", ["gpu-acquire-no-flash",
                                  "home-inv-skips-sharers"])
def test_cheap_mutants_killed(name):
    mutant = mutant_by_name(name)
    with mutant.applied():
        assert _hint_killed(mutant), f"{name} survived its kill hints"


@pytest.mark.tier1
def test_baseline_passes_where_mutants_die():
    # the kill scenarios pass on the UNMUTATED protocol: the harness
    # blames the seeded bug, not the scenario
    for mutant in MUTANTS:
        scenario = scenario_by_name(mutant.kill_hints[0])
        run_schedule(scenario, mutant.configs[0], None)


@pytest.mark.slow
@pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
def test_every_mutant_killed(mutant):
    with mutant.applied():
        assert _hint_killed(mutant), f"{mutant.name} survived"


@pytest.mark.slow
def test_kill_matrix_reports_kills_for_all():
    def explore(scenario_name, config_name):
        scenario = scenario_by_name(scenario_name)
        result = DfsExplorer(max_schedules=120).explore(
            scenario, config_name)
        if result.failures:
            return True
        result = RandomWalkExplorer(seeds=range(6)).explore(
            scenario, config_name)
        return bool(result.failures)

    matrix = kill_matrix(explore)
    surviving = [name for name, kills in matrix.items() if not kills]
    assert not surviving, f"surviving mutants: {surviving}"
