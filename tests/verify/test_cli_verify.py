"""End-to-end tests for the ``repro verify`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace
from repro.verify.mutants import mutant_by_name

pytestmark = pytest.mark.tier1


def test_verify_list_names_the_corpus(capsys):
    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    assert "litmus corpus" in out
    assert "wb-races-reqwt" in out


def test_verify_small_sweep_passes(capsys):
    rc = main(["verify", "--scenarios", "mp-flag-handoff",
               "--configs", "SMG,HMG", "--max-schedules", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out


def test_verify_walk_mode(capsys):
    rc = main(["verify", "--scenarios", "atomic-counter",
               "--configs", "SDD", "--mode", "walk", "--seeds", "4"])
    assert rc == 0
    assert "4 schedules" in capsys.readouterr().out


def test_verify_coverage_report_prints(capsys):
    rc = main(["verify", "--scenarios", "mp-flag-handoff",
               "--configs", "SMG", "--max-schedules", "4",
               "--coverage"])
    assert rc == 0
    assert "FSM transition coverage" in capsys.readouterr().out


def test_verify_unknown_names_exit_2(capsys):
    assert main(["verify", "--configs", "XXX"]) == 2
    assert main(["verify", "--scenarios", "no-such-scenario"]) == 2
    capsys.readouterr()


def test_verify_failure_repro_trace_and_replay(tmp_path, capsys):
    """The full failure pipeline: explore -> shrink -> repro JSON ->
    Chrome trace -> replay (reproduces under the mutant, passes
    reverted)."""
    repro_path = tmp_path / "repro.json"
    trace_path = tmp_path / "schedule-trace.json"
    mutant = mutant_by_name("home-stale-wb-applies")
    with mutant.applied():
        rc = main(["verify", "--scenarios", "wb-races-reqwt",
                   "--configs", "SMG", "--max-schedules", "120",
                   "--repro-out", str(repro_path),
                   "--trace-out", str(trace_path)])
    assert rc == 3
    err = capsys.readouterr().err
    assert "wb-races-reqwt on SMG" in err

    payload = json.loads(repro_path.read_text())
    assert payload["scenario"] == "wb-races-reqwt"
    assert payload["config"] == "SMG"
    assert len(payload["choices"]) <= len(payload["shrunk_from"])

    trace = json.loads(trace_path.read_text())
    assert not validate_chrome_trace(trace)
    assert trace["traceEvents"]

    with mutant.applied():
        assert main(["verify", "--replay", str(repro_path)]) == 3
    capsys.readouterr()
    # reverted, the same schedule must pass
    assert main(["verify", "--replay", str(repro_path)]) == 0
    assert "no longer reproduces" in capsys.readouterr().out
