"""Tier-1 litmus sweep: every scenario, every Table V configuration.

Each scenario runs under the fair canonical delivery schedule on all
six configurations and must pass the full check stack (invariants,
final memory vs the DRF reference image, per-load value legality).
Schedule *exploration* lives in test_explorer.py; this file is the
cheap always-on gate plus corpus authoring discipline.
"""

import pytest

from repro.system.config import CONFIGS
from repro.verify import CORPUS, run_schedule, scenario_by_name

pytestmark = pytest.mark.tier1

CONFIG_NAMES = tuple(CONFIGS)


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 20


def test_scenario_names_are_unique():
    names = [scenario.name for scenario in CORPUS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_scenarios_are_drf(scenario):
    # authoring discipline: reference execution must succeed and be
    # race-free, otherwise the checks downstream are meaningless
    result = scenario.reference()
    assert not result.races


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_default_schedule_passes(scenario, config_name):
    run_schedule(scenario, config_name, None)


def test_scenario_by_name_roundtrip():
    assert scenario_by_name(CORPUS[0].name) is CORPUS[0]
    with pytest.raises(KeyError):
        scenario_by_name("no-such-scenario")
