"""FSM transition coverage: the corpus must visit >= 90 % of the
curated reachable (state, event) pairs in each of the four FSMs the
acceptance bar names, with unvisited pairs listed by name.

Tier-1 scores a deterministic run (default schedule on all six
configurations plus a small DFS on two); the ``slow`` suite re-runs
the curation-sized sweep, which visits the table exactly.
"""

import pytest

from repro.system.config import CONFIGS
from repro.verify import (CORPUS, CoverageRecorder, DfsExplorer,
                          coverage_report, format_coverage, run_schedule)
from repro.verify.coverage import (DENOVO_L1, GPU_L1, MESI_L1,
                                   REACHABLE_PAIRS, SPANDEX_HOME)

REQUIRED_FSMS = (MESI_L1, DENOVO_L1, GPU_L1, SPANDEX_HOME)


def _tier1_recorder() -> CoverageRecorder:
    recorder = CoverageRecorder()
    for scenario in CORPUS:
        for config_name in CONFIGS:
            run_schedule(scenario, config_name, None, coverage=recorder)
    for scenario in CORPUS:
        for config_name in ("SMG", "HMG"):
            DfsExplorer(max_schedules=12).explore(scenario, config_name,
                                                  coverage=recorder)
    return recorder


@pytest.mark.tier1
def test_reachable_tables_are_curated():
    for fsm in REQUIRED_FSMS:
        assert REACHABLE_PAIRS[fsm], f"{fsm} table is empty"


@pytest.mark.tier1
def test_transition_coverage_meets_bar():
    recorder = _tier1_recorder()
    report = coverage_report(recorder)
    rendered = format_coverage(report)
    for fsm in REQUIRED_FSMS:
        entry = report[fsm]
        # unvisited pairs are listed by name in the rendered report
        for state, event in entry["unvisited"]:
            assert f"({state}, {event})" in rendered
        assert entry["percent"] >= 90.0, rendered


@pytest.mark.tier1
def test_report_names_unvisited_pairs():
    recorder = CoverageRecorder()            # nothing visited
    report = coverage_report(recorder)
    rendered = format_coverage(report)
    for fsm in REQUIRED_FSMS:
        assert report[fsm]["percent"] == 0.0
        assert report[fsm]["unvisited"]
    assert "UNVISITED" in rendered


@pytest.mark.slow
def test_curation_sweep_visits_table_exactly():
    recorder = CoverageRecorder()
    for scenario in CORPUS:
        for config_name in CONFIGS:
            DfsExplorer(max_schedules=40).explore(scenario, config_name,
                                                  coverage=recorder)
    report = coverage_report(recorder)
    for fsm in REQUIRED_FSMS:
        entry = report[fsm]
        assert entry["percent"] == 100.0, format_coverage(report)
        assert not entry["extra"], format_coverage(report)
