"""Exploration over an unreliable fabric: the litmus corpus's
``unreliable-*`` scenarios give the schedule explorer drop/dup budgets
to spend at *adversarial* choice points, and every explored schedule
must still satisfy its checks — the transport's dedupe/reorder logic
(the same ``_RecvChannel`` production uses) has to make delivery faults
invisible to the protocol at every interleaving.

Tier-1 runs bounded DFS on the two LLC families; the ``slow`` suite
widens the budget across all six configurations (the nightly job).
"""

import pytest

from repro.system.config import CONFIGS
from repro.verify import CORPUS, DfsExplorer, run_schedule, \
    scenario_by_name
from repro.verify.explorer import (PrefixChooser,
                                   UnreliableControlledNetwork)

UNRELIABLE_SCENARIOS = tuple(s for s in CORPUS
                             if "unreliable" in s.tags)
SMOKE_CONFIGS = ("SMG", "HMG")


@pytest.mark.tier1
def test_corpus_carries_unreliable_scenarios():
    names = {s.name for s in UNRELIABLE_SCENARIOS}
    assert {"unreliable-mp-handoff", "unreliable-atomic-counter",
            "unreliable-ownership-handoff",
            "unreliable-xshard-handoff"} <= names


@pytest.mark.tier1
@pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
@pytest.mark.parametrize("scenario", UNRELIABLE_SCENARIOS,
                         ids=lambda s: s.name)
def test_bounded_dfs_over_unreliable_scenarios(scenario, config_name):
    result = DfsExplorer(max_schedules=24).explore(scenario, config_name)
    assert result.ok, result.failures
    assert result.schedules > 1             # faults widened the tree


@pytest.mark.tier1
def test_unreliable_scenarios_use_the_fault_network():
    scenario = scenario_by_name("unreliable-mp-handoff")
    run = run_schedule(scenario, "SMG")
    assert isinstance(run.system.network, UnreliableControlledNetwork)
    # spec-declared budgets were installed before exploration began
    spec = scenario.spec()
    assert spec["verify_drops"] > 0 and spec["verify_dups"] > 0


@pytest.mark.tier1
def test_forced_prefix_spends_fault_budgets():
    """A chooser that always picks the last option keeps selecting
    drop/dup actions while budget remains, so the budgets must be
    demonstrably consumed and the dedupe machinery must fire."""
    scenario = scenario_by_name("unreliable-mp-handoff")
    run = run_schedule(scenario, "SMG", PrefixChooser([5] * 6))
    network = run.system.network
    spec = scenario.spec()
    assert network.transport_drops + network.transport_dups > 0
    assert network.transport_drops <= spec["verify_drops"]
    assert network.transport_dups <= spec["verify_dups"]


@pytest.mark.tier1
def test_plain_scenarios_keep_the_plain_network():
    scenario = scenario_by_name("mp-flag-handoff")
    run = run_schedule(scenario, "SMG")
    assert not isinstance(run.system.network,
                          UnreliableControlledNetwork)


# -- the nightly widening -----------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("config_name", tuple(CONFIGS))
@pytest.mark.parametrize("scenario", UNRELIABLE_SCENARIOS,
                         ids=lambda s: s.name)
def test_unreliable_dfs_all_configs(scenario, config_name):
    result = DfsExplorer(max_schedules=96).explore(scenario, config_name)
    assert result.ok, result.failures
